package decompose

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/qsim"
)

// checkNativeEquivalent asserts ToNative(c) implements the same unitary as c
// and emits only native kinds.
func checkNativeEquivalent(t *testing.T, name string, c *circuit.Circuit) {
	t.Helper()
	nat := ToNative(c)
	for i, g := range nat.Gates() {
		if g.Kind != circuit.Measure && !g.Kind.Native() {
			t.Fatalf("%s: gate %d kind %v is not native", name, i, g.Kind)
		}
	}
	if !qsim.EquivalentUpToPhase(c, nat, 4, 12345) {
		t.Fatalf("%s: native decomposition is not unitarily equivalent", name)
	}
}

func TestSingleQubitDecompositions(t *testing.T) {
	kinds := []circuit.Kind{
		circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg,
	}
	for _, k := range kinds {
		c := circuit.New(1)
		c.MustAdd(k, 0, 0)
		checkNativeEquivalent(t, k.String(), c)
	}
}

func TestRotationsPassThrough(t *testing.T) {
	c := circuit.New(1)
	c.ApplyRX(0.3, 0)
	c.ApplyRY(-1.2, 0)
	c.ApplyRZ(2.5, 0)
	nat := ToNative(c)
	if nat.Len() != 3 {
		t.Fatalf("rotations should pass through unchanged, got %d gates", nat.Len())
	}
	checkNativeEquivalent(t, "rotations", c)
}

func TestIdentityDropped(t *testing.T) {
	c := circuit.New(1)
	c.MustAdd(circuit.I, 0, 0)
	if nat := ToNative(c); nat.Len() != 0 {
		t.Errorf("identity should be dropped, got %d gates", nat.Len())
	}
}

func TestCNOTNativeSequence(t *testing.T) {
	c := circuit.New(2)
	c.ApplyCNOT(0, 1)
	nat := ToNative(c)
	if nat.Len() != 5 {
		t.Fatalf("paper CNOT lowering has 5 gates, got %d", nat.Len())
	}
	if nat.CountKind(circuit.XX) != 1 {
		t.Fatalf("CNOT lowering should contain exactly one XX, got %d",
			nat.CountKind(circuit.XX))
	}
	checkNativeEquivalent(t, "cnot", c)
	// Also in the reverse direction.
	r := circuit.New(2)
	r.ApplyCNOT(1, 0)
	checkNativeEquivalent(t, "cnot-rev", r)
}

func TestCZDecomposition(t *testing.T) {
	c := circuit.New(2)
	c.ApplyCZ(0, 1)
	checkNativeEquivalent(t, "cz", c)
	if got := TwoQubitGateCount(c); got != 1 {
		t.Errorf("CZ two-qubit count = %d, want 1", got)
	}
}

func TestCPDecomposition(t *testing.T) {
	for _, th := range []float64{math.Pi, math.Pi / 2, math.Pi / 7, -1.3, 0.001} {
		c := circuit.New(2)
		c.ApplyCP(th, 0, 1)
		checkNativeEquivalent(t, "cp", c)
	}
	c := circuit.New(2)
	c.ApplyCP(math.Pi/3, 0, 1)
	if got := TwoQubitGateCount(c); got != 2 {
		t.Errorf("CP two-qubit count = %d, want 2 (Table II counting)", got)
	}
}

func TestSWAPDecomposition(t *testing.T) {
	c := circuit.New(2)
	c.ApplySWAP(0, 1)
	checkNativeEquivalent(t, "swap", c)
	if got := TwoQubitGateCount(c); got != 3 {
		t.Errorf("SWAP two-qubit count = %d, want 3", got)
	}
}

func TestCCXDecomposition(t *testing.T) {
	c := circuit.New(3)
	c.ApplyCCX(0, 1, 2)
	checkNativeEquivalent(t, "ccx", c)
	if got := TwoQubitGateCount(c); got != 6 {
		t.Errorf("CCX two-qubit count = %d, want 6", got)
	}
}

func TestMeasurePassesThrough(t *testing.T) {
	c := circuit.New(1)
	c.ApplyMeasure(0)
	nat := ToNative(c)
	if nat.Len() != 1 || nat.Gate(0).Kind != circuit.Measure {
		t.Errorf("measure should pass through, got %v", nat.Gates())
	}
}

func TestToCNOTContainsOnlyCNOTLevelGates(t *testing.T) {
	c := circuit.New(3)
	c.ApplyCCX(0, 1, 2)
	c.ApplySWAP(0, 2)
	c.ApplyCP(1.0, 1, 2)
	c.ApplyCZ(0, 1)
	low := ToCNOT(c)
	for i, g := range low.Gates() {
		if g.IsTwoQubit() && g.Kind != circuit.CNOT {
			t.Errorf("gate %d: two-qubit kind %v at CNOT level", i, g.Kind)
		}
	}
	if !qsim.EquivalentUpToPhase(c, low, 4, 99) {
		t.Error("ToCNOT changed the unitary")
	}
}

func TestPropertyRandomCircuitsDecomposeEquivalently(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		c := circuit.New(n)
		kinds := []circuit.Kind{
			circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S,
			circuit.T, circuit.CNOT, circuit.CZ, circuit.CP, circuit.SWAP,
			circuit.CCX, circuit.RX, circuit.RY, circuit.RZ, circuit.XX,
		}
		for i := 0; i < 12; i++ {
			k := kinds[rng.Intn(len(kinds))]
			qs := rng.Perm(n)[:k.Arity()]
			theta := 0.0
			if k.Parameterized() {
				theta = (rng.Float64() - 0.5) * 4 * math.Pi
			}
			g, err := circuit.NewGate(k, theta, qs...)
			if err != nil {
				return false
			}
			if err := c.Add(g); err != nil {
				return false
			}
		}
		nat := ToNative(c)
		for _, g := range nat.Gates() {
			if !g.Kind.Native() {
				return false
			}
		}
		return qsim.EquivalentUpToPhase(c, nat, 2, seed^0x5bd1e995)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNativeTwoQubitCountMatchesCNOTLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		c := circuit.New(n)
		kinds := []circuit.Kind{circuit.CNOT, circuit.CZ, circuit.CP, circuit.SWAP, circuit.CCX, circuit.H}
		for i := 0; i < 15; i++ {
			k := kinds[rng.Intn(len(kinds))]
			qs := rng.Perm(n)[:k.Arity()]
			theta := 0.0
			if k.Parameterized() {
				theta = rng.Float64()
			}
			g, _ := circuit.NewGate(k, theta, qs...)
			if err := c.Add(g); err != nil {
				return false
			}
		}
		// #XX in the native form == #CNOT at the CNOT level.
		return ToNative(c).CountKind(circuit.XX) == ToCNOT(c).CountKind(circuit.CNOT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
