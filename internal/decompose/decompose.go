// Package decompose lowers high-level gates to the trapped-ion native gate
// set {RX, RY, RZ, XX} used by the TILT architecture (paper §IV-B).
//
// The CNOT lowering is the paper's sequence:
//
//	Ry(π/2) q1; XX(π/4) q1,q2; Rx(−π/2) q1; Rx(−π/2) q2; Ry(−π/2) q1
//
// All other multi-qubit gates are first expressed over CNOT + single-qubit
// gates (standard textbook identities), then each CNOT is lowered to one
// Mølmer–Sørensen XX(π/4) with local rotations. Consequently the two-qubit
// gate count of the native circuit equals the CNOT count of the intermediate
// form — the counting convention used by Table II of the paper.
package decompose

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// ToNative lowers every gate of c to the native set {RX, RY, RZ, XX}.
// Measure markers pass through unchanged. The result is a fresh circuit of
// the same width.
func ToNative(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits())
	for _, g := range c.Gates() {
		emitNative(out, g)
	}
	return out
}

// ToCNOT lowers every gate of c to {single-qubit gates, CNOT}. This is the
// intermediate level at which the paper counts two-qubit gates (Table II).
func ToCNOT(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits())
	for _, g := range c.Gates() {
		emitCNOTLevel(out, g)
	}
	return out
}

// TwoQubitGateCount returns the number of two-qubit gates c contains after
// lowering to the CNOT level — the Table II counting convention.
func TwoQubitGateCount(c *circuit.Circuit) int {
	return ToCNOT(c).TwoQubitCount()
}

func emitNative(out *circuit.Circuit, g circuit.Gate) {
	switch g.Kind {
	case circuit.I:
		// dropped
	case circuit.X:
		out.ApplyRX(math.Pi, g.Qubits[0])
	case circuit.Y:
		out.ApplyRY(math.Pi, g.Qubits[0])
	case circuit.Z:
		out.ApplyRZ(math.Pi, g.Qubits[0])
	case circuit.S:
		out.ApplyRZ(math.Pi/2, g.Qubits[0])
	case circuit.Sdg:
		out.ApplyRZ(-math.Pi/2, g.Qubits[0])
	case circuit.T:
		out.ApplyRZ(math.Pi/4, g.Qubits[0])
	case circuit.Tdg:
		out.ApplyRZ(-math.Pi/4, g.Qubits[0])
	case circuit.H:
		// H = Ry(π/2)·Z up to global phase: apply Rz(π) first, then Ry(π/2).
		out.ApplyRZ(math.Pi, g.Qubits[0])
		out.ApplyRY(math.Pi/2, g.Qubits[0])
	case circuit.RX, circuit.RY, circuit.RZ, circuit.XX:
		out.MustAdd(g.Kind, g.Theta, g.Qubits...)
	case circuit.CNOT:
		emitCNOTNative(out, g.Qubits[0], g.Qubits[1])
	case circuit.CZ, circuit.CP, circuit.SWAP, circuit.CCX:
		tmp := circuit.New(out.NumQubits())
		emitCNOTLevel(tmp, g)
		for _, gg := range tmp.Gates() {
			emitNative(out, gg)
		}
	case circuit.Measure:
		out.MustAdd(circuit.Measure, 0, g.Qubits...)
	default:
		panic(fmt.Sprintf("decompose: unsupported gate kind %v", g.Kind))
	}
}

// emitCNOTNative emits the paper's 5-gate CNOT lowering.
func emitCNOTNative(out *circuit.Circuit, ctl, tgt int) {
	out.ApplyRY(math.Pi/2, ctl)
	out.ApplyXX(math.Pi/4, ctl, tgt)
	out.ApplyRX(-math.Pi/2, ctl)
	out.ApplyRX(-math.Pi/2, tgt)
	out.ApplyRY(-math.Pi/2, ctl)
}

func emitCNOTLevel(out *circuit.Circuit, g circuit.Gate) {
	switch g.Kind {
	case circuit.CZ:
		a, b := g.Qubits[0], g.Qubits[1]
		out.ApplyH(b)
		out.ApplyCNOT(a, b)
		out.ApplyH(b)
	case circuit.CP:
		// cp(θ) a,b = rz(θ/2) a; cx a,b; rz(−θ/2) b; cx a,b; rz(θ/2) b
		// (standard Qiskit u1-based identity, exact up to global phase).
		a, b := g.Qubits[0], g.Qubits[1]
		th := g.Theta
		out.ApplyRZ(th/2, a)
		out.ApplyCNOT(a, b)
		out.ApplyRZ(-th/2, b)
		out.ApplyCNOT(a, b)
		out.ApplyRZ(th/2, b)
	case circuit.SWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		out.ApplyCNOT(a, b)
		out.ApplyCNOT(b, a)
		out.ApplyCNOT(a, b)
	case circuit.CCX:
		// Standard 6-CNOT Toffoli (Nielsen & Chuang Fig. 4.9).
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		out.ApplyH(t)
		out.ApplyCNOT(b, t)
		out.ApplyTdg(t)
		out.ApplyCNOT(a, t)
		out.ApplyT(t)
		out.ApplyCNOT(b, t)
		out.ApplyTdg(t)
		out.ApplyCNOT(a, t)
		out.ApplyT(b)
		out.ApplyT(t)
		out.ApplyH(t)
		out.ApplyCNOT(a, b)
		out.ApplyT(a)
		out.ApplyTdg(b)
		out.ApplyCNOT(a, b)
	default:
		// Everything else is already at (or below) the CNOT level.
		out.MustAdd(g.Kind, g.Theta, g.Qubits...)
	}
}
