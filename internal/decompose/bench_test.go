package decompose

import (
	"testing"

	"repro/internal/workloads"
)

// BenchmarkToNativeQFT measures lowering the 64-qubit QFT to the trapped-ion
// native set.
func BenchmarkToNativeQFT(b *testing.B) {
	bm := workloads.QFT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := ToNative(bm.Circuit); c.Len() == 0 {
			b.Fatal("empty decomposition")
		}
	}
}

// BenchmarkToNativeAdder measures lowering the Toffoli-heavy adder.
func BenchmarkToNativeAdder(b *testing.B) {
	bm := workloads.Adder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := ToNative(bm.Circuit); c.Len() == 0 {
			b.Fatal("empty decomposition")
		}
	}
}
