package device

import (
	"testing"
	"testing/quick"
)

func TestTILTValidate(t *testing.T) {
	cases := []struct {
		spec TILT
		ok   bool
	}{
		{TILT{64, 16}, true},
		{TILT{64, 32}, true},
		{TILT{64, 64}, true},
		{TILT{1, 2}, false},
		{TILT{64, 1}, false},
		{TILT{16, 32}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%+v: Validate() = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestTILTExecutable(t *testing.T) {
	d := TILT{NumIons: 64, HeadSize: 16}
	if !d.Executable(15) {
		t.Error("distance 15 should be executable under a 16-ion head")
	}
	if d.Executable(16) {
		t.Error("distance 16 should not be executable under a 16-ion head")
	}
	if d.Executable(-1) {
		t.Error("negative distance should not be executable")
	}
	if got := d.MaxGateDistance(); got != 15 {
		t.Errorf("MaxGateDistance = %d, want 15", got)
	}
	if got := d.NumPositions(); got != 49 {
		t.Errorf("NumPositions = %d, want 49", got)
	}
}

func TestPositionsForFig5(t *testing.T) {
	// Paper Fig. 5: with head size L, a gate of distance L−1 has exactly
	// one valid position; distance L−3 has three.
	d := TILT{NumIons: 64, HeadSize: 16}
	lo, hi, ok := d.PositionsFor(10, 25) // distance 15 = L−1
	if !ok || hi-lo != 0 {
		t.Errorf("distance L-1: positions [%d,%d] ok=%v, want exactly one", lo, hi, ok)
	}
	lo, hi, ok = d.PositionsFor(10, 23) // distance 13 = L−3
	if !ok || hi-lo != 2 {
		t.Errorf("distance L-3: positions [%d,%d] ok=%v, want three", lo, hi, ok)
	}
	if _, _, ok := d.PositionsFor(0, 16); ok {
		t.Error("distance 16 should have no valid positions")
	}
	if _, _, ok := d.PositionsFor(-1, 5); ok {
		t.Error("out-of-range slot should have no valid positions")
	}
}

func TestPositionsForClampsAtEdges(t *testing.T) {
	d := TILT{NumIons: 64, HeadSize: 16}
	lo, hi, ok := d.PositionsFor(0, 1)
	if !ok || lo != 0 {
		t.Errorf("edge gate positions [%d,%d] ok=%v, want lo=0", lo, hi, ok)
	}
	lo, hi, ok = d.PositionsFor(62, 63)
	if !ok || hi != 48 {
		t.Errorf("far-edge gate positions [%d,%d] ok=%v, want hi=48", lo, hi, ok)
	}
	// Reversed argument order must normalize.
	lo2, hi2, ok2 := d.PositionsFor(63, 62)
	if lo != lo2 || hi != hi2 || ok != ok2 {
		t.Error("PositionsFor not symmetric in argument order")
	}
}

func TestPropertyPositionsCoverGate(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		d := TILT{NumIons: 64, HeadSize: 16}
		a := int(aRaw) % 64
		b := int(bRaw) % 64
		if a == b {
			return true
		}
		lo, hi, ok := d.PositionsFor(a, b)
		qlo, qhi := a, b
		if qlo > qhi {
			qlo, qhi = qhi, qlo
		}
		if qhi-qlo > d.MaxGateDistance() {
			return !ok
		}
		if !ok || lo > hi {
			return false
		}
		// Every returned position must cover both qubits.
		for p := lo; p <= hi; p++ {
			if p > qlo || qhi > p+d.HeadSize-1 {
				return false
			}
		}
		// Positions just outside must not.
		if lo > 0 && qhi <= lo-1+d.HeadSize-1 && lo-1 <= qlo {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIdealTIValidate(t *testing.T) {
	if err := (IdealTI{NumIons: 64}).Validate(); err != nil {
		t.Errorf("valid IdealTI failed: %v", err)
	}
	if err := (IdealTI{NumIons: 1}).Validate(); err == nil {
		t.Error("1-ion IdealTI should fail")
	}
}

func TestQCCDValidateAndTraps(t *testing.T) {
	if err := (QCCD{NumQubits: 64, Capacity: 16}).Validate(); err != nil {
		t.Errorf("valid QCCD failed: %v", err)
	}
	if err := (QCCD{NumQubits: 1, Capacity: 16}).Validate(); err == nil {
		t.Error("1-qubit QCCD should fail")
	}
	if err := (QCCD{NumQubits: 64, Capacity: 1}).Validate(); err == nil {
		t.Error("capacity-1 QCCD should fail")
	}
	// 64 qubits, capacity 16 -> 15 usable per trap -> 5 traps.
	if got := (QCCD{NumQubits: 64, Capacity: 16}).NumTraps(); got != 5 {
		t.Errorf("NumTraps = %d, want 5", got)
	}
	if got := (QCCD{NumQubits: 64, Capacity: 35}).NumTraps(); got != 2 {
		t.Errorf("NumTraps(35) = %d, want 2", got)
	}
}
