// Package device describes the machine models evaluated in the paper: the
// TILT linear-tape trap, the ideal fully connected trapped-ion device, and
// the QCCD multi-trap device of Murali et al. used as the Fig. 8 baseline.
package device

import "fmt"

// TILT is a linear-tape trapped-ion device: NumIons ions in one chain, a
// fixed laser head covering HeadSize contiguous ions (the execution zone).
type TILT struct {
	NumIons  int
	HeadSize int
}

// Validate checks the specification is physically meaningful.
func (t TILT) Validate() error {
	if t.NumIons < 2 {
		return fmt.Errorf("device: TILT needs ≥2 ions, got %d", t.NumIons)
	}
	if t.HeadSize < 2 {
		return fmt.Errorf("device: TILT head size %d < 2", t.HeadSize)
	}
	if t.HeadSize > t.NumIons {
		return fmt.Errorf("device: TILT head size %d exceeds chain length %d",
			t.HeadSize, t.NumIons)
	}
	return nil
}

// MaxGateDistance is the largest two-qubit gate distance executable under
// the head: both ions must fit in an L-ion window, so L−1 spacings.
func (t TILT) MaxGateDistance() int { return t.HeadSize - 1 }

// Executable reports whether a two-qubit gate spanning d ion spacings can be
// executed (possibly after a tape move) without swap insertion.
func (t TILT) Executable(d int) bool { return d >= 0 && d <= t.MaxGateDistance() }

// NumPositions is the number of distinct head positions (leftmost covered
// slot ranges over [0, NumIons−HeadSize]).
func (t TILT) NumPositions() int { return t.NumIons - t.HeadSize + 1 }

// PositionsFor returns the inclusive range [lo, hi] of head positions at
// which a gate occupying physical slots [qlo, qhi] is executable, and
// ok=false if the span exceeds the head.
func (t TILT) PositionsFor(qlo, qhi int) (lo, hi int, ok bool) {
	if qlo > qhi {
		qlo, qhi = qhi, qlo
	}
	if qhi-qlo > t.MaxGateDistance() || qlo < 0 || qhi >= t.NumIons {
		return 0, 0, false
	}
	lo = qhi - t.HeadSize + 1
	if lo < 0 {
		lo = 0
	}
	hi = qlo
	if max := t.NumIons - t.HeadSize; hi > max {
		hi = max
	}
	return lo, hi, true
}

// IdealTI is a fully connected trapped-ion device: every pair of the NumIons
// ions can interact directly, with no shuttling (the Fig. 8 upper bound).
type IdealTI struct {
	NumIons int
}

// Validate checks the specification.
func (d IdealTI) Validate() error {
	if d.NumIons < 2 {
		return fmt.Errorf("device: IdealTI needs ≥2 ions, got %d", d.NumIons)
	}
	return nil
}

// QCCD is a linear multi-trap quantum charge-coupled device: NumTraps traps
// in a row, each holding up to Capacity ions, connected by shuttling
// segments. Cross-trap interaction requires swap-to-edge, split, shuttle,
// and merge primitives (paper Fig. 3).
type QCCD struct {
	NumQubits int
	Capacity  int
}

// Validate checks the specification. The paper sweeps Capacity over [15,35].
func (d QCCD) Validate() error {
	if d.NumQubits < 2 {
		return fmt.Errorf("device: QCCD needs ≥2 qubits, got %d", d.NumQubits)
	}
	if d.Capacity < 2 {
		return fmt.Errorf("device: QCCD capacity %d < 2", d.Capacity)
	}
	return nil
}

// NumTraps returns the trap count: enough traps of the given capacity to
// hold every qubit with at least one free slot per trap for transit (a full
// trap cannot accept a shuttled ion).
func (d QCCD) NumTraps() int {
	eff := d.Capacity - 1
	if eff < 1 {
		eff = 1
	}
	n := (d.NumQubits + eff - 1) / eff
	if n < 1 {
		n = 1
	}
	return n
}
