package tracing_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tracing"
)

func TestRootChildLinkage(t *testing.T) {
	tr := tracing.New("test")
	root := tr.StartRoot("job")
	root.SetAttr("tenant", "alice")
	child := root.StartChild("compile")
	child.Annotate("cache miss")
	child.End()
	root.End()

	sc := root.Context()
	if !sc.Valid() {
		t.Fatalf("root context invalid: %+v", sc)
	}
	spans, ok := tr.Trace(sc.TraceID)
	if !ok {
		t.Fatalf("trace %s not stored", sc.TraceID)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start time: root first.
	if spans[0].Name != "job" || spans[1].Name != "compile" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentID != "" {
		t.Errorf("root has parent %q", spans[0].ParentID)
	}
	if spans[1].ParentID != spans[0].SpanID {
		t.Errorf("child parent %q, want %q", spans[1].ParentID, spans[0].SpanID)
	}
	if spans[1].TraceID != spans[0].TraceID {
		t.Errorf("child trace %q, want %q", spans[1].TraceID, spans[0].TraceID)
	}
	if spans[0].Attrs["tenant"] != "alice" {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
	if len(spans[1].Events) != 1 || spans[1].Events[0].Msg != "cache miss" {
		t.Errorf("events = %v", spans[1].Events)
	}
	if spans[0].Duration() < 0 {
		t.Errorf("negative duration %v", spans[0].Duration())
	}
}

func TestNilSafety(t *testing.T) {
	// Every operation on a nil tracer / nil span must be a no-op.
	var tr *tracing.Tracer
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.Annotate("e")
	c := s.StartChild("y")
	if c != nil {
		t.Fatal("nil span returned non-nil child")
	}
	s.EndErr(errors.New("boom"))
	s.End()
	if got := s.Traceparent(); got != "" {
		t.Errorf("nil span traceparent %q", got)
	}
	if _, ok := tr.Trace("abc"); ok {
		t.Error("nil tracer stored a trace")
	}
	if tr.Len() != 0 || tr.Service() != "" {
		t.Error("nil tracer not empty")
	}
	ctx, sp := tracing.StartSpan(context.Background(), "z")
	if sp != nil {
		t.Fatal("StartSpan without active span returned non-nil")
	}
	if tracing.FromContext(ctx) != nil {
		t.Fatal("FromContext returned span for bare context")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := tracing.New("client")
	root := tr.StartRoot("submit")
	hdr := root.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q", hdr)
	}
	sc, ok := tracing.ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	if sc != root.Context() {
		t.Fatalf("round trip %+v != %+v", sc, root.Context())
	}

	// A remote tracer continues the trace under the same ID.
	daemon := tracing.New("linqd")
	remote := daemon.StartRemote("http.submit", sc)
	if remote.Context().TraceID != sc.TraceID {
		t.Errorf("remote trace %q, want %q", remote.Context().TraceID, sc.TraceID)
	}
	remote.End()
	spans, ok := daemon.Trace(sc.TraceID)
	if !ok || len(spans) != 1 || spans[0].ParentID != sc.SpanID {
		t.Fatalf("daemon store: ok=%v spans=%+v", ok, spans)
	}
	root.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"01-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01",  // version
		"00-aaaa-bbbbbbbbbbbbbbbb-01",                              // short trace
		"00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbb-01",              // short span
		"00-00000000000000000000000000000000-bbbbbbbbbbbbbbbb-01",  // zero trace
		"00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-0000000000000000-01",  // zero span
		"00-AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA-bbbbbbbbbbbbbbbb-01",  // uppercase
		"00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-001", // flags width
	}
	for _, h := range bad {
		if _, ok := tracing.ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Extra fields after flags are tolerated (future versions append them).
	if _, ok := tracing.ParseTraceparent("00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01-extra"); !ok {
		t.Error("trailing field rejected")
	}
}

func TestStartRemoteInvalidParentStartsFresh(t *testing.T) {
	tr := tracing.New("linqd")
	s := tr.StartRemote("http", tracing.SpanContext{})
	if s == nil || !s.Context().Valid() {
		t.Fatalf("invalid parent should start a fresh trace, got %+v", s.Context())
	}
	if s.Context().TraceID == "" {
		t.Fatal("no trace ID minted")
	}
	s.End()
}

func TestContextPropagation(t *testing.T) {
	tr := tracing.New("test")
	root := tr.StartRoot("job")
	ctx := tracing.ContextWithSpan(context.Background(), root)
	if tracing.FromContext(ctx) != root {
		t.Fatal("FromContext lost the span")
	}
	ctx2, child := tracing.StartSpan(ctx, "compile")
	if child == nil {
		t.Fatal("StartSpan returned nil with active span")
	}
	if tracing.FromContext(ctx2) != child {
		t.Fatal("StartSpan did not activate the child")
	}
	child.End()
	root.End()
	spans, _ := tr.Trace(root.Context().TraceID)
	if len(spans) != 2 || spans[1].ParentID != root.Context().SpanID {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestBoundedStoreEvictsOldest(t *testing.T) {
	tr := tracing.New("test", tracing.WithMaxTraces(2))
	var ids []string
	for i := 0; i < 3; i++ {
		s := tr.StartRoot(fmt.Sprintf("t%d", i))
		ids = append(ids, s.Context().TraceID)
		s.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2", tr.Len())
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Trace(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
}

func TestPerTraceSpanBound(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := tracing.New("test", tracing.WithMaxSpans(2), tracing.WithMetrics(reg))
	root := tr.StartRoot("job")
	for i := 0; i < 4; i++ {
		root.StartChild(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	spans, _ := tr.Trace(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linq_trace_spans_dropped_total 3") {
		t.Errorf("dropped counter missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `linq_trace_spans_finished_total{service="test"} 2`) {
		t.Errorf("finished counter missing:\n%s", out)
	}
	if !strings.Contains(out, "linq_trace_stored_traces 1") {
		t.Errorf("stored gauge missing:\n%s", out)
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := tracing.New("test")
	s := tr.StartRoot("x")
	s.End()
	s.EndErr(errors.New("late"))
	spans, _ := tr.Trace(s.Context().TraceID)
	if len(spans) != 1 {
		t.Fatalf("stored %d spans, want 1", len(spans))
	}
	if spans[0].Error != "" {
		t.Errorf("late EndErr recorded error %q", spans[0].Error)
	}
}

func TestEndErrRecordsError(t *testing.T) {
	tr := tracing.New("test")
	s := tr.StartRoot("x")
	s.EndErr(errors.New("compile exploded"))
	spans, _ := tr.Trace(s.Context().TraceID)
	if spans[0].Error != "compile exploded" {
		t.Errorf("error = %q", spans[0].Error)
	}
}

func TestJSONExporter(t *testing.T) {
	var buf bytes.Buffer
	exp := tracing.NewJSONExporter(&buf)
	tr := tracing.New("test", tracing.WithExporter(exp))
	root := tr.StartRoot("job")
	root.StartChild("compile").End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exported %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var d tracing.SpanData
		if err := json.Unmarshal([]byte(ln), &d); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if d.TraceID != root.Context().TraceID || d.Service != "test" {
			t.Errorf("exported span %+v", d)
		}
	}
	if exp.Failed() != 0 {
		t.Errorf("Failed() = %d", exp.Failed())
	}
}

type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONExporterCountsWriteFailures(t *testing.T) {
	exp := tracing.NewJSONExporter(errWriter{})
	tr := tracing.New("test", tracing.WithExporter(exp))
	tr.StartRoot("x").End()
	if exp.Failed() != 1 {
		t.Errorf("Failed() = %d, want 1", exp.Failed())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := tracing.New("test", tracing.WithMaxSpans(4096))
	root := tr.StartRoot("job")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 32; j++ {
				c := root.StartChild(fmt.Sprintf("w%d", i))
				c.SetAttr("iter", fmt.Sprintf("%d", j))
				c.Annotate("tick")
				c.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	spans, ok := tr.Trace(root.Context().TraceID)
	if !ok || len(spans) != 16*32+1 {
		t.Fatalf("stored %d spans, want %d", len(spans), 16*32+1)
	}
}

func TestUniqueIDs(t *testing.T) {
	tr := tracing.New("test")
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		s := tr.StartRoot("x")
		sc := s.Context()
		if seen[sc.TraceID] || seen[sc.SpanID] {
			t.Fatalf("duplicate ID at iter %d: %+v", i, sc)
		}
		seen[sc.TraceID] = true
		seen[sc.SpanID] = true
		s.End()
	}
}
