// Package tracing is a dependency-free distributed-tracing subsystem for
// the LinQ serving stack: spans with IDs, parent links, attributes, and
// timestamped events; context propagation helpers; W3C-style traceparent
// encoding for crossing process boundaries; a bounded in-memory trace store
// for serving GET /v1/traces/{id}; and a structured-JSON exporter for
// shipping finished spans to logs or files.
//
// It is distinct from internal/trace, which renders tape schedules — this
// package answers "where did job X spend its 800ms" across the client, the
// HTTP layer, the queue, and every compiler pass.
//
// The zero cost path matters: every Span method is nil-receiver-safe, so
// call sites instrument unconditionally and a disabled tracer (or a context
// without a span) makes the whole surface a no-op.
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// SpanContext is the propagatable identity of a span: the trace it belongs
// to and its own ID. The zero value is "no span".
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether the context names a real span: a 32-hex-digit trace
// ID and a 16-hex-digit span ID, neither all-zero.
func (sc SpanContext) Valid() bool {
	return validHexID(sc.TraceID, 32) && validHexID(sc.SpanID, 16)
}

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			if c != '0' {
				zero = false
			}
		case c >= 'a' && c <= 'f':
			zero = false
		default:
			return false
		}
	}
	return !zero
}

// Traceparent renders the context as a W3C trace-context header value
// (version 00, sampled flag set): 00-<trace-id>-<span-id>-01.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. Unknown
// versions, malformed fields, and all-zero IDs return ok=false — a bad
// header never breaks a request, it just starts a fresh trace.
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if len(parts[3]) != 2 || !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Annotation is one timestamped event on a span.
type Annotation struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Span is one timed operation in a trace. Create spans with
// Tracer.StartRoot / Tracer.StartRemote / Span.StartChild / StartSpan and
// finish them with End (or EndErr). All methods are safe on a nil receiver
// and safe for concurrent use, so instrumentation sites never branch on
// whether tracing is enabled.
type Span struct {
	tracer *Tracer

	mu     sync.Mutex
	data   SpanData
	ended  bool
	childN atomic.Int64 // children started under this span (for attrs/tests)
}

// SpanData is the exported wire form of a finished span — what the store
// returns, the JSON exporter writes, and /v1/traces/{id} serves.
type SpanData struct {
	SpanContext
	// ParentID is the parent span's ID ("" for a trace root). The parent
	// may live in another process: a daemon-side root parents to the
	// client-side span that carried the traceparent header.
	ParentID string `json:"parent_id,omitempty"`
	// Name says what the span timed ("compile", "pass insert-swaps", ...).
	Name string `json:"name"`
	// Service is the emitting tracer's service name ("client", "linqd").
	Service string            `json:"service"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []Annotation      `json:"events,omitempty"`
	// Error is the failure the span ended with ("" on success).
	Error string `json:"error,omitempty"`
}

// Duration returns End − Start (0 while the span is live).
func (d SpanData) Duration() time.Duration {
	if d.End.IsZero() {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Context returns the span's propagatable identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.data.SpanContext
}

// Traceparent renders the span as an outgoing traceparent header value
// ("" for nil spans), the injection half of cross-process propagation.
func (s *Span) Traceparent() string { return s.Context().Traceparent() }

// SetAttr sets a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// Annotate appends a timestamped event to the span.
func (s *Span) Annotate(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.data.Events = append(s.data.Events, Annotation{Time: time.Now(), Msg: msg})
}

// StartChild starts a child span in the same trace. On a nil receiver it
// returns nil, so instrumentation chains stay unconditional.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	s.childN.Add(1)
	return s.tracer.start(name, s.data.TraceID, s.data.SpanID)
}

// End finishes the span: stamps the end time and hands it to the tracer's
// store and exporter. Ending twice (or ending a nil span) is a no-op.
func (s *Span) End() { s.EndErr(nil) }

// EndErr finishes the span, recording err as the span's failure when
// non-nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	if err != nil {
		s.data.Error = err.Error()
	}
	data := s.snapshotLocked()
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.finish(data)
	}
}

// snapshotLocked deep-copies the span data so the stored/exported form
// never aliases the live span's maps and slices.
func (s *Span) snapshotLocked() SpanData {
	data := s.data
	if len(s.data.Attrs) > 0 {
		data.Attrs = make(map[string]string, len(s.data.Attrs))
		for k, v := range s.data.Attrs {
			data.Attrs[k] = v
		}
	}
	data.Events = append([]Annotation(nil), s.data.Events...)
	return data
}

// Exporter receives every finished span. Implementations must be safe for
// concurrent use; they run on the ending goroutine, so they should be fast
// (buffer or fan out internally if not).
type Exporter interface {
	ExportSpan(d SpanData)
}

// Tracer creates spans for one service and retains finished spans in a
// bounded in-memory store, grouped by trace. All methods are safe for
// concurrent use; a nil *Tracer is a valid "tracing disabled" tracer whose
// every operation no-ops.
type Tracer struct {
	service   string
	maxTraces int
	maxSpans  int
	exporter  Exporter

	mu     sync.Mutex
	traces map[string]*storedTrace
	order  []string // trace IDs in first-seen order, for FIFO eviction

	mx *instruments
}

// storedTrace is the retained spans of one trace.
type storedTrace struct {
	spans   []SpanData
	dropped int // spans beyond maxSpans
}

// instruments are the tracer's own telemetry handles (linq_trace_*).
type instruments struct {
	finished *metrics.CounterVec // linq_trace_spans_finished_total{service}
	dropped  *metrics.Counter    // linq_trace_spans_dropped_total
	evicted  *metrics.Counter    // linq_trace_evicted_total
	stored   *metrics.Gauge      // linq_trace_stored_traces
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithMaxTraces bounds the in-memory store to n traces (default 512);
// the oldest trace is evicted first.
func WithMaxTraces(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.maxTraces = n
		}
	}
}

// WithMaxSpans bounds the spans retained per trace (default 1024); spans
// beyond the bound are counted but not stored, so one runaway trace cannot
// hold the store hostage.
func WithMaxSpans(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.maxSpans = n
		}
	}
}

// WithExporter ships every finished span to e in addition to the store.
func WithExporter(e Exporter) Option {
	return func(t *Tracer) { t.exporter = e }
}

// WithMetrics instruments the tracer against the registry: finished-span
// and dropped-span counters and the stored-trace gauge, under the
// linq_trace_* families.
func WithMetrics(r *metrics.Registry) Option {
	return func(t *Tracer) {
		t.mx = &instruments{
			finished: r.CounterVec("linq_trace_spans_finished_total",
				"Spans finished, by emitting service.", "service"),
			dropped: r.Counter("linq_trace_spans_dropped_total",
				"Finished spans dropped because their trace hit the per-trace span bound."),
			evicted: r.Counter("linq_trace_evicted_total",
				"Traces evicted from the bounded in-memory store."),
			stored: r.Gauge("linq_trace_stored_traces",
				"Traces currently retained in the in-memory store."),
		}
	}
}

// New returns a tracer for the named service ("linqd", "client", ...).
func New(service string, opts ...Option) *Tracer {
	t := &Tracer{
		service:   service,
		maxTraces: 512,
		maxSpans:  1024,
		traces:    make(map[string]*storedTrace),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Service returns the tracer's service name ("" for a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// StartRoot starts a span at the root of a brand-new trace. Returns nil on
// a nil tracer.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, newID(16), "")
}

// StartRemote starts a span continuing a trace begun in another process:
// same trace ID, parented to the remote span — the extraction half of
// traceparent propagation. An invalid parent starts a fresh trace instead.
func (t *Tracer) StartRemote(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return t.start(name, parent.TraceID, parent.SpanID)
}

func (t *Tracer) start(name, traceID, parentID string) *Span {
	return &Span{
		tracer: t,
		data: SpanData{
			SpanContext: SpanContext{TraceID: traceID, SpanID: newID(8)},
			ParentID:    parentID,
			Name:        name,
			Service:     t.service,
			Start:       time.Now(),
		},
	}
}

// finish stores and exports one finished span.
func (t *Tracer) finish(d SpanData) {
	t.mu.Lock()
	tr := t.traces[d.TraceID]
	if tr == nil {
		tr = &storedTrace{}
		t.traces[d.TraceID] = tr
		t.order = append(t.order, d.TraceID)
		if len(t.order) > t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
			if t.mx != nil {
				t.mx.evicted.Inc()
			}
		}
		if t.mx != nil {
			t.mx.stored.Set(float64(len(t.order)))
		}
	}
	if len(tr.spans) >= t.maxSpans {
		tr.dropped++
		t.mu.Unlock()
		if t.mx != nil {
			t.mx.dropped.Inc()
		}
		return
	}
	tr.spans = append(tr.spans, d)
	t.mu.Unlock()
	if t.mx != nil {
		t.mx.finished.With(t.service).Inc()
	}
	if t.exporter != nil {
		t.exporter.ExportSpan(d)
	}
}

// Trace returns the stored finished spans of one trace, sorted by start
// time (ties by span ID so the order is stable). The second return is
// false when the store holds nothing for the ID — never seen, or already
// evicted. Returns copies; mutating them cannot corrupt the store.
func (t *Tracer) Trace(id string) ([]SpanData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	tr := t.traces[id]
	var spans []SpanData
	if tr != nil {
		spans = append([]SpanData(nil), tr.spans...)
	}
	t.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans, true
}

// Len returns the number of traces currently stored.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// ctxKey keys the active span in a context.
type ctxKey int

const spanCtxKey ctxKey = iota

// ContextWithSpan returns a context carrying the span as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, s)
}

// FromContext returns the context's active span (nil when tracing is off or
// no span was attached — safe to call methods on either way).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey).(*Span)
	return s
}

// StartSpan starts a child of the context's active span and returns a
// context with the child active. With no active span it returns (ctx, nil):
// callers end the nil span harmlessly.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	child := FromContext(ctx).StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}

// JSONExporter writes each finished span as one line of JSON (the SpanData
// wire form) — the structured export path for shipping traces into log
// pipelines. Safe for concurrent use; write errors are counted and then
// ignored so a full disk never breaks serving.
type JSONExporter struct {
	mu     sync.Mutex
	w      io.Writer
	failed atomic.Int64
}

// NewJSONExporter returns an exporter writing to w.
func NewJSONExporter(w io.Writer) *JSONExporter {
	return &JSONExporter{w: w}
}

// ExportSpan implements Exporter.
func (e *JSONExporter) ExportSpan(d SpanData) {
	b, err := json.Marshal(d)
	if err != nil {
		e.failed.Add(1)
		return
	}
	b = append(b, '\n')
	e.mu.Lock()
	_, err = e.w.Write(b)
	e.mu.Unlock()
	if err != nil {
		e.failed.Add(1)
	}
}

// Failed reports how many spans could not be written.
func (e *JSONExporter) Failed() int64 { return e.failed.Load() }

// idCounter backs the fallback ID stream if crypto/rand ever fails.
var idCounter atomic.Uint64

// newID returns n random bytes hex-encoded (2n digits), never all-zero.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Entropy exhaustion is effectively unreachable on the supported
		// platforms; a monotonic fallback keeps IDs unique per process.
		return fmt.Sprintf("%0*x", 2*n, idCounter.Add(1))
	}
	zero := true
	for _, c := range b {
		if c != 0 {
			zero = false
			break
		}
	}
	if zero {
		b[n-1] = 1
	}
	return hex.EncodeToString(b)
}
