package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := map[string]func(*Params){
		"gamma":   func(p *Params) { p.Gamma = -1 },
		"eps":     func(p *Params) { p.Epsilon = -1 },
		"k0":      func(p *Params) { p.K0 = -0.1 },
		"oneq":    func(p *Params) { p.OneQubitError = 1.5 },
		"slope":   func(p *Params) { p.GateTimeSlope = -1 },
		"time1q":  func(p *Params) { p.OneQubitTimeUs = -1 },
		"rate":    func(p *Params) { p.ShuttleRateUmPerUs = 0 },
		"spacing": func(p *Params) { p.IonSpacingUm = 0 },
		"split":   func(p *Params) { p.SplitMergeFactor = -1 },
		"cool":    func(p *Params) { p.CoolingInterval = -1 },
	}
	for name, mod := range mods {
		p := Default()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", name)
		}
	}
}

func TestGateTimeEq3(t *testing.T) {
	p := Default()
	// Eq. 3: τ(d) = 38d + 10.
	cases := map[int]float64{0: 10, 1: 48, 15: 580, 63: 2404}
	for d, want := range cases {
		if got := p.GateTime(d); math.Abs(got-want) > 1e-12 {
			t.Errorf("GateTime(%d) = %g, want %g", d, got, want)
		}
	}
}

func TestGateTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GateTime(-1) should panic")
		}
	}()
	Default().GateTime(-1)
}

func TestShuttleQuantaSqrtScaling(t *testing.T) {
	p := Default()
	k64 := p.ShuttleQuanta(64)
	k16 := p.ShuttleQuanta(16)
	if math.Abs(k64/k16-2) > 1e-12 {
		t.Errorf("k(64)/k(16) = %g, want 2 (√n scaling)", k64/k16)
	}
	if math.Abs(k64-1.0) > 1e-12 {
		t.Errorf("k(64) = %g, want 1.0 with default K0=0.125", k64)
	}
}

func TestTwoQubitErrorEq4(t *testing.T) {
	p := Default()
	// With zero quanta, err = Γτ + ε exactly (the (1+ε)^1 − 1 term).
	tau := p.GateTime(10)
	got := p.TwoQubitError(tau, 0)
	want := p.Gamma*tau + p.Epsilon
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TwoQubitError(τ,0) = %g, want %g", got, want)
	}
	// Error grows monotonically with quanta.
	prev := 0.0
	for q := 0.0; q < 400; q += 25 {
		e := p.TwoQubitError(tau, q)
		if e < prev {
			t.Fatalf("error not monotone at quanta=%g: %g < %g", q, e, prev)
		}
		prev = e
	}
	// And clamps to 1 for absurd heating.
	if e := p.TwoQubitError(tau, 1e9); e != 1 {
		t.Errorf("extreme heating error = %g, want clamp to 1", e)
	}
	// Negative quanta treated as zero.
	if e := p.TwoQubitError(tau, -5); e != p.TwoQubitError(tau, 0) {
		t.Errorf("negative quanta not clamped: %g", e)
	}
}

func TestTwoQubitFidelityBounds(t *testing.T) {
	f := func(dRaw uint8, qRaw uint16) bool {
		p := Default()
		fid := p.TwoQubitFidelity(int(dRaw)%80, float64(qRaw)/10)
		return fid >= 0 && fid <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFidelityDecreasesWithDistance(t *testing.T) {
	p := Default()
	prev := 2.0
	for d := 0; d < 64; d++ {
		f := p.TwoQubitFidelity(d, 1)
		if f >= prev {
			t.Fatalf("fidelity not decreasing at d=%d: %g >= %g", d, f, prev)
		}
		prev = f
	}
}

func TestOneQubitFidelity(t *testing.T) {
	p := Default()
	if got := p.OneQubitFidelity(); math.Abs(got-(1-1e-4)) > 1e-15 {
		t.Errorf("OneQubitFidelity = %g", got)
	}
}

func TestMoveTime(t *testing.T) {
	p := Default()
	// 16 spacings at 1 µm/spacing and 1 µm/µs = 16 µs.
	if got := p.MoveTime(16); math.Abs(got-16) > 1e-12 {
		t.Errorf("MoveTime(16) = %g, want 16", got)
	}
	if got := p.MoveTime(-16); math.Abs(got-16) > 1e-12 {
		t.Errorf("MoveTime(-16) = %g, want 16 (absolute)", got)
	}
	p.IonSpacingUm = 5
	if got := p.MoveTime(10); math.Abs(got-50) > 1e-12 {
		t.Errorf("MoveTime with 5µm spacing = %g, want 50", got)
	}
}

func TestPropertyErrorMonotoneInTau(t *testing.T) {
	f := func(t1Raw, t2Raw uint16, qRaw uint8) bool {
		p := Default()
		t1 := float64(t1Raw)
		t2 := float64(t2Raw)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		q := float64(qRaw)
		return p.TwoQubitError(t1, q) <= p.TwoQubitError(t2, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEffectiveQuantaCoolsAfterInterval(t *testing.T) {
	p := Default()
	p.CoolingInterval = 3
	k := 2.0
	// Moves 1..3 accumulate 1k, 2k, 3k; cooling fires after move 3, so
	// move 4 restarts at 1k. The boundary move sees the full interval.
	want := []float64{2, 4, 6, 2, 4, 6, 2}
	for m := 1; m <= len(want); m++ {
		if got := p.EffectiveQuanta(m, k); math.Abs(got-want[m-1]) > 1e-12 {
			t.Errorf("EffectiveQuanta(%d) = %g, want %g", m, got, want[m-1])
		}
	}
}

func TestEffectiveQuantaWithoutCooling(t *testing.T) {
	p := Default()
	for m := 0; m <= 5; m++ {
		if got, want := p.EffectiveQuanta(m, 1.5), float64(m)*1.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("EffectiveQuanta(%d) = %g, want %g", m, got, want)
		}
	}
	p.CoolingInterval = 4
	if got := p.EffectiveQuanta(0, 1.5); got != 0 {
		t.Errorf("EffectiveQuanta(0) = %g, want 0", got)
	}
}
