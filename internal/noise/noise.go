// Package noise implements the paper's fidelity and timing models:
//
//   - Eq. 3: AM two-qubit gate time τ(d) = 38·d + 10 µs for ion distance d;
//   - Eq. 4: two-qubit gate fidelity after heating,
//     F = 1 − Γτ − ((1+ε)^(2q+1) − 1), where q is the motional quanta
//     accumulated in the chain (q = m·k after m tape moves);
//   - §III-A/IV-E: per-shuttle heating k = k₀·√n for an n-ion chain;
//   - Eq. 5: program execution time t_exe = t_m·dist + Σ_d t_d.
//
// The paper states the functional forms but not every constant; Params
// carries calibrated defaults (documented in DESIGN.md §2) and every value
// is injectable so studies can explore other operating points.
package noise

import (
	"fmt"
	"math"
)

// Params collects every noise/timing constant used by the simulators.
type Params struct {
	// Gamma is the background heating rate of the trap in 1/µs; it
	// contributes Γ·τ to each two-qubit gate error (Eq. 4).
	Gamma float64
	// Epsilon is the residual phase-space-closure error per two-qubit gate
	// (ε in Eq. 4); heating amplifies it as (1+ε)^(2q+1) − 1.
	Epsilon float64
	// K0 scales the per-shuttle heating: a move of an n-ion chain adds
	// K0·√n motional quanta (paper §III-A).
	K0 float64
	// OneQubitError is the constant error of a single-qubit gate
	// (thermally insensitive, §IV-E).
	OneQubitError float64
	// GateTimeSlope and GateTimeOffset define Eq. 3:
	// τ(d) = slope·d + offset in µs.
	GateTimeSlope  float64
	GateTimeOffset float64
	// OneQubitTimeUs is the duration of a single-qubit rotation in µs.
	OneQubitTimeUs float64
	// ShuttleRateUmPerUs is the tape shuttling speed t_m (paper: 1 µm/µs).
	ShuttleRateUmPerUs float64
	// IonSpacingUm converts ion-spacing distances to µm for Eq. 5 and the
	// Table III "dist" column. The paper's reported distances are
	// consistent with ~1 µm per spacing; physical traps are ~5 µm.
	IonSpacingUm float64
	// SplitMergeFactor multiplies the linear-shuttle heating for QCCD
	// split and merge primitives (which the paper notes are significantly
	// hotter than linear shuttles).
	SplitMergeFactor float64
	// HopFactor multiplies the linear-shuttle heating for a QCCD
	// inter-trap segment crossing by a single ion.
	HopFactor float64
	// CoolingInterval, when positive, models sympathetic cooling (§VII):
	// after every CoolingInterval tape moves the chain's accumulated
	// motional quanta reset to zero.
	CoolingInterval int
}

// Default returns the calibrated parameter set used for the paper
// reproduction (see DESIGN.md §2 for the calibration anchors).
func Default() Params {
	return Params{
		Gamma:              1e-6,
		Epsilon:            5e-5,
		K0:                 0.125,
		OneQubitError:      1e-4,
		GateTimeSlope:      38,
		GateTimeOffset:     10,
		OneQubitTimeUs:     10,
		ShuttleRateUmPerUs: 1,
		IonSpacingUm:       1,
		SplitMergeFactor:   3,
		HopFactor:          1,
	}
}

// Validate rejects non-physical parameter sets.
func (p Params) Validate() error {
	switch {
	case p.Gamma < 0:
		return fmt.Errorf("noise: negative Gamma %g", p.Gamma)
	case p.Epsilon < 0:
		return fmt.Errorf("noise: negative Epsilon %g", p.Epsilon)
	case p.K0 < 0:
		return fmt.Errorf("noise: negative K0 %g", p.K0)
	case p.OneQubitError < 0 || p.OneQubitError >= 1:
		return fmt.Errorf("noise: OneQubitError %g outside [0,1)", p.OneQubitError)
	case p.GateTimeSlope < 0 || p.GateTimeOffset < 0:
		return fmt.Errorf("noise: negative gate-time coefficients")
	case p.OneQubitTimeUs < 0:
		return fmt.Errorf("noise: negative OneQubitTimeUs")
	case p.ShuttleRateUmPerUs <= 0:
		return fmt.Errorf("noise: non-positive shuttle rate %g", p.ShuttleRateUmPerUs)
	case p.IonSpacingUm <= 0:
		return fmt.Errorf("noise: non-positive ion spacing %g", p.IonSpacingUm)
	case p.SplitMergeFactor < 0 || p.HopFactor < 0:
		return fmt.Errorf("noise: negative QCCD heating factors")
	case p.CoolingInterval < 0:
		return fmt.Errorf("noise: negative cooling interval %d", p.CoolingInterval)
	}
	return nil
}

// GateTime returns the AM two-qubit gate duration τ(d) in µs (Eq. 3) for a
// gate spanning d ion spacings.
func (p Params) GateTime(d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("noise: negative gate distance %d", d))
	}
	return p.GateTimeSlope*float64(d) + p.GateTimeOffset
}

// ShuttleQuanta returns the motional quanta k added to an n-ion chain by one
// linear shuttle: k = K0·√n (paper §III-A).
func (p Params) ShuttleQuanta(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("noise: negative chain length %d", n))
	}
	return p.K0 * math.Sqrt(float64(n))
}

// EffectiveQuanta returns the motional quanta the chain carries during the
// gates of move number moves (1-based), where each tape move adds k quanta
// (k = ShuttleQuanta(n)). With sympathetic cooling enabled
// (CoolingInterval = C > 0) the chain is re-cooled *after* every C-th move:
// the gates of move C still see the full C·k quanta, and move C+1 starts a
// fresh accumulation at 1·k. All simulators (sim, mc, trace) share this
// accounting so cross-validation stays exact.
func (p Params) EffectiveQuanta(moves int, k float64) float64 {
	if p.CoolingInterval > 0 && moves > 0 {
		moves = (moves-1)%p.CoolingInterval + 1
	}
	return float64(moves) * k
}

// TwoQubitError returns the Eq. 4 error of a two-qubit gate with duration
// tau (µs) executed while the chain carries the given motional quanta:
// err = Γτ + ((1+ε)^(2·quanta+1) − 1), clamped to [0, 1].
func (p Params) TwoQubitError(tau, quanta float64) float64 {
	if quanta < 0 {
		quanta = 0
	}
	// (1+ε)^(2q+1) − 1 computed in log space for numerical stability.
	amp := math.Expm1((2*quanta + 1) * math.Log1p(p.Epsilon))
	err := p.Gamma*tau + amp
	if err < 0 {
		return 0
	}
	if err > 1 {
		return 1
	}
	return err
}

// TwoQubitFidelity returns 1 − TwoQubitError for a gate spanning d spacings.
func (p Params) TwoQubitFidelity(d int, quanta float64) float64 {
	return 1 - p.TwoQubitError(p.GateTime(d), quanta)
}

// OneQubitFidelity returns the constant single-qubit gate fidelity.
func (p Params) OneQubitFidelity() float64 { return 1 - p.OneQubitError }

// MoveTime returns the duration in µs of a tape move spanning the given
// number of ion spacings.
func (p Params) MoveTime(spacings int) float64 {
	if spacings < 0 {
		spacings = -spacings
	}
	return float64(spacings) * p.IonSpacingUm / p.ShuttleRateUmPerUs
}
