package circuit

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCircuitJSONRoundTrip feeds arbitrary bytes to the circuit JSON
// decoder. Invalid input must be rejected with an error (never a panic,
// never a half-initialized circuit); anything accepted must re-encode to a
// stable wire form: Marshal → Unmarshal → Marshal is byte-identical and
// fingerprint-preserving. linqd's remote backend relies on exactly this to
// ship circuits between processes.
func FuzzCircuitJSONRoundTrip(f *testing.F) {
	valid := New(3)
	valid.ApplyH(0)
	valid.ApplyCNOT(0, 1)
	valid.ApplyRZ(0.25, 2)
	seed, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"qubits":1,"gates":[]}`))
	f.Add([]byte(`{"qubits":0,"gates":[]}`))
	f.Add([]byte(`{"qubits":2,"gates":[{"kind":"cx","qubits":[0,0]}]}`))
	f.Add([]byte(`{"qubits":2,"gates":[{"kind":"h","qubits":[9]}]}`))
	f.Add([]byte(`{"qubits":2,"gates":[{"kind":"nope","qubits":[0]}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Circuit
		if err := json.Unmarshal(data, &c); err != nil {
			return
		}
		if c.NumQubits() <= 0 {
			t.Fatalf("decoder accepted a circuit with %d qubits", c.NumQubits())
		}
		for i := 0; i < c.Len(); i++ {
			for _, q := range c.Gate(i).Qubits {
				if q < 0 || q >= c.NumQubits() {
					t.Fatalf("decoder accepted gate %d with qubit %d outside [0,%d)", i, q, c.NumQubits())
				}
			}
		}
		first, err := json.Marshal(&c)
		if err != nil {
			t.Fatalf("Marshal of an accepted circuit failed: %v", err)
		}
		var back Circuit
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("Unmarshal of our own wire form failed: %v\n%s", err, first)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("re-Marshal failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("wire form is not stable:\n%s\n%s", first, second)
		}
		if back.Fingerprint() != c.Fingerprint() {
			t.Fatalf("round-trip changed the circuit: %s != %s", back.Fingerprint(), c.Fingerprint())
		}
	})
}
