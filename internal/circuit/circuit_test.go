package circuit

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindArity(t *testing.T) {
	cases := []struct {
		k    Kind
		want int
	}{
		{X, 1}, {H, 1}, {RZ, 1}, {CNOT, 2}, {CZ, 2}, {CP, 2}, {SWAP, 2},
		{XX, 2}, {CCX, 3}, {Measure, 1},
	}
	for _, c := range cases {
		if got := c.k.Arity(); got != c.want {
			t.Errorf("%v.Arity() = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if CNOT.String() != "cx" {
		t.Errorf("CNOT.String() = %q, want cx", CNOT.String())
	}
	if Kind(999).String() != "kind(999)" {
		t.Errorf("unknown kind string = %q", Kind(999).String())
	}
}

func TestKindNative(t *testing.T) {
	for _, k := range []Kind{RX, RY, RZ, XX} {
		if !k.Native() {
			t.Errorf("%v should be native", k)
		}
	}
	for _, k := range []Kind{X, H, CNOT, CZ, SWAP, CCX} {
		if k.Native() {
			t.Errorf("%v should not be native", k)
		}
	}
}

func TestNewGateValidation(t *testing.T) {
	if _, err := NewGate(CNOT, 0, 1); err == nil {
		t.Error("CNOT with one qubit should fail")
	}
	if _, err := NewGate(CNOT, 0, 2, 2); err == nil {
		t.Error("CNOT with repeated qubit should fail")
	}
	if _, err := NewGate(X, 0, -1); err == nil {
		t.Error("negative qubit should fail")
	}
	if _, err := NewGate(X, 1.0, 3); err == nil {
		t.Error("theta on non-parameterized gate should fail")
	}
	if _, err := NewGate(RX, math.NaN(), 0); err == nil {
		t.Error("NaN theta should fail")
	}
	if _, err := NewGate(RX, math.Inf(1), 0); err == nil {
		t.Error("Inf theta should fail")
	}
	if g, err := NewGate(XX, math.Pi/4, 0, 5); err != nil || g.Distance() != 5 {
		t.Errorf("valid XX gate: %v, distance %d", err, g.Distance())
	}
}

func TestGateDistancePanicsOnSingleQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distance on 1-qubit gate should panic")
		}
	}()
	g, _ := NewGate(X, 0, 0)
	g.Distance()
}

func TestCircuitAddOutOfRange(t *testing.T) {
	c := New(3)
	g, _ := NewGate(X, 0, 5)
	if err := c.Add(g); err == nil {
		t.Error("adding gate on qubit 5 to 3-qubit circuit should fail")
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestDepthAndLayers(t *testing.T) {
	c := New(4)
	c.ApplyH(0)       // layer 1
	c.ApplyCNOT(0, 1) // layer 2
	c.ApplyCNOT(2, 3) // layer 1
	c.ApplyCNOT(1, 2) // layer 3
	c.ApplyX(0)       // layer 3
	if got := c.Depth(); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	layers := c.Layers()
	if len(layers) != 3 {
		t.Fatalf("len(Layers) = %d, want 3", len(layers))
	}
	if len(layers[0]) != 2 || len(layers[1]) != 1 || len(layers[2]) != 2 {
		t.Errorf("layer sizes = %d/%d/%d, want 2/1/2",
			len(layers[0]), len(layers[1]), len(layers[2]))
	}
	depths := c.GateDepths()
	want := []int{1, 2, 1, 3, 3}
	for i, w := range want {
		if depths[i] != w {
			t.Errorf("GateDepths[%d] = %d, want %d", i, depths[i], w)
		}
	}
}

func TestCountsAndDistance(t *testing.T) {
	c := New(8)
	c.ApplyH(0)
	c.ApplyCNOT(0, 7)
	c.ApplyCNOT(1, 2)
	c.ApplySWAP(3, 4)
	c.ApplyRZ(0.5, 5)
	if got := c.TwoQubitCount(); got != 3 {
		t.Errorf("TwoQubitCount = %d, want 3", got)
	}
	if got := c.CountKind(CNOT); got != 2 {
		t.Errorf("CountKind(CNOT) = %d, want 2", got)
	}
	if got := c.MaxTwoQubitDistance(); got != 7 {
		t.Errorf("MaxTwoQubitDistance = %d, want 7", got)
	}
	counts := c.GateCounts()
	if counts[H] != 1 || counts[CNOT] != 2 || counts[SWAP] != 1 || counts[RZ] != 1 {
		t.Errorf("GateCounts = %v", counts)
	}
}

func TestMaxTwoQubitDistanceEmpty(t *testing.T) {
	c := New(4)
	c.ApplyH(0)
	if got := c.MaxTwoQubitDistance(); got != 0 {
		t.Errorf("MaxTwoQubitDistance = %d, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(3)
	c.ApplyCNOT(0, 1)
	d := c.Clone()
	d.Gates()[0].Qubits[0] = 2
	if c.Gate(0).Qubits[0] != 0 {
		t.Error("Clone shares qubit slices with original")
	}
	d.ApplyX(2)
	if c.Len() != 1 {
		t.Error("Clone shares gate slice growth with original")
	}
}

func TestQubitGateLists(t *testing.T) {
	c := New(3)
	c.ApplyH(0)
	c.ApplyCNOT(0, 1)
	c.ApplyCNOT(1, 2)
	lists := c.QubitGateLists()
	if len(lists[0]) != 2 || len(lists[1]) != 2 || len(lists[2]) != 1 {
		t.Errorf("QubitGateLists sizes = %d/%d/%d", len(lists[0]), len(lists[1]), len(lists[2]))
	}
	if lists[1][0] != 1 || lists[1][1] != 2 {
		t.Errorf("qubit 1 list = %v, want [1 2]", lists[1])
	}
}

func TestValidate(t *testing.T) {
	c := New(3)
	c.ApplyCNOT(0, 2)
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit failed Validate: %v", err)
	}
	// Hand-corrupt a gate.
	c.Gates()[0].Qubits[1] = 9
	if err := c.Validate(); err == nil {
		t.Error("corrupted circuit passed Validate")
	}
}

func TestString(t *testing.T) {
	c := New(2)
	c.ApplyH(0)
	c.ApplyCP(math.Pi/2, 0, 1)
	s := c.String()
	if !strings.Contains(s, "qreg q[2]") || !strings.Contains(s, "h q0") ||
		!strings.Contains(s, "cp(") {
		t.Errorf("String output unexpected:\n%s", s)
	}
}

// randomCircuit builds a pseudo-random valid circuit for property tests.
func randomCircuit(rng *rand.Rand, n, gates int) *Circuit {
	c := New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.ApplyH(rng.Intn(n))
		case 1:
			c.ApplyRZ(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 2:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.ApplyCNOT(a, b)
		case 3:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.ApplyXX(math.Pi/4, a, b)
		}
	}
	return c
}

func TestPropertyDepthBounds(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%8
		gates := int(gRaw) % 50
		c := randomCircuit(rng, n, gates)
		d := c.Depth()
		if gates == 0 {
			return d == 0
		}
		// Depth is at least ceil(len/num-parallel-slots) and at most len.
		return d >= 1 && d <= c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLayersPartitionGates(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%8
		c := randomCircuit(rng, n, int(gRaw)%60)
		layers := c.Layers()
		seen := make(map[int]bool)
		for _, layer := range layers {
			used := make(map[int]bool)
			for _, gi := range layer {
				if seen[gi] {
					return false // duplicate gate across layers
				}
				seen[gi] = true
				for _, q := range c.Gate(gi).Qubits {
					if used[q] {
						return false // qubit conflict within a layer
					}
					used[q] = true
				}
			}
		}
		return len(seen) == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5, int(gRaw)%40)
		d := c.Clone()
		if c.Len() != d.Len() || c.NumQubits() != d.NumQubits() {
			return false
		}
		for i := 0; i < c.Len(); i++ {
			a, b := c.Gate(i), d.Gate(i)
			if a.Kind != b.Kind || a.Theta != b.Theta || len(a.Qubits) != len(b.Qubits) {
				return false
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintStableAndContentSensitive(t *testing.T) {
	build := func() *Circuit {
		c := New(4)
		c.ApplyH(0)
		c.ApplyRZ(0.25, 1)
		c.ApplyCNOT(0, 2)
		return c
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical circuits have different fingerprints")
	}
	if got := a.Fingerprint(); got != a.Fingerprint() {
		t.Error("fingerprint not deterministic across calls")
	}

	// Any content change must change the hash.
	variants := []*Circuit{New(5), build(), build(), build()}
	variants[0].ApplyH(0)
	variants[0].ApplyRZ(0.25, 1)
	variants[0].ApplyCNOT(0, 2)                                           // width differs
	variants[1].ApplyX(3)                                                 // extra gate
	variants[2].Gates()[1] = Gate{Kind: RZ, Theta: 0.5, Qubits: []int{1}} // angle differs
	variants[3].Gates()[2] = Gate{Kind: CNOT, Qubits: []int{2, 0}}        // operand order differs
	seen := map[string]bool{a.Fingerprint(): true}
	for i, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d collides with a prior fingerprint", i)
		}
		seen[fp] = true
	}
}

func TestFingerprintEmptyCircuitsDifferByWidth(t *testing.T) {
	if New(3).Fingerprint() == New(4).Fingerprint() {
		t.Error("empty circuits of different widths share a fingerprint")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New(5)
	c.ApplyH(0)
	c.ApplyCNOT(0, 1)
	c.ApplyRZ(0.25, 2)
	c.ApplyRZ(0, 3) // zero-angle parameterized gate must survive omitempty
	c.ApplyCP(-math.Pi/3, 1, 4)
	c.ApplyXX(1.5, 2, 3)
	c.ApplyCCX(0, 1, 2)
	c.ApplyMeasure(4)

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	got := &Circuit{}
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if got.Fingerprint() != c.Fingerprint() {
		t.Errorf("round trip changed the circuit:\n in %s\nout %s", c, got)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"zero qubits", `{"qubits":0,"gates":[]}`},
		{"unknown kind", `{"qubits":2,"gates":[{"kind":"nope","qubits":[0]}]}`},
		{"bad arity", `{"qubits":2,"gates":[{"kind":"cx","qubits":[0]}]}`},
		{"out of range", `{"qubits":2,"gates":[{"kind":"h","qubits":[2]}]}`},
		{"theta on unparameterized", `{"qubits":2,"gates":[{"kind":"h","qubits":[0],"theta":1}]}`},
		{"not json", `{"qubits":`},
	}
	for _, tc := range cases {
		var c Circuit
		if err := json.Unmarshal([]byte(tc.src), &c); err == nil {
			t.Errorf("%s: unmarshal accepted %s", tc.name, tc.src)
		}
	}
}

func TestKindByNameCoversEveryKind(t *testing.T) {
	for k := I; k < numKinds; k++ {
		got, err := KindByName(k.String())
		if err != nil {
			t.Fatalf("KindByName(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("KindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("KindByName accepted an unknown mnemonic")
	}
}
