// Package circuit defines the quantum-circuit intermediate representation
// used throughout the LinQ toolflow: gates, circuits, dependency structure,
// and depth/layering utilities.
//
// A Circuit is an ordered list of gates over NumQubits qubits. Program order
// is a valid topological order of the gate-dependency DAG (two gates depend
// on each other iff they share a qubit), so compiler passes may process gates
// front to back.
package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Kind identifies a gate type.
type Kind int

// Supported gate kinds. The trapped-ion native set is {RX, RY, RZ, XX};
// everything else is a convenience kind that internal/decompose lowers.
const (
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	RX
	RY
	RZ
	CNOT
	CZ
	CP
	SWAP
	XX
	CCX
	Measure
	numKinds
)

var kindNames = [...]string{
	I: "i", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg", T: "t",
	Tdg: "tdg", RX: "rx", RY: "ry", RZ: "rz", CNOT: "cx", CZ: "cz",
	CP: "cp", SWAP: "swap", XX: "xx", CCX: "ccx", Measure: "measure",
}

// String returns the lowercase mnemonic for the kind (QASM-style).
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Arity returns the number of qubits a gate of this kind acts on.
func (k Kind) Arity() int {
	switch k {
	case CNOT, CZ, CP, SWAP, XX:
		return 2
	case CCX:
		return 3
	default:
		return 1
	}
}

// Parameterized reports whether gates of this kind carry a rotation angle.
func (k Kind) Parameterized() bool {
	switch k {
	case RX, RY, RZ, CP, XX:
		return true
	}
	return false
}

// Native reports whether the kind belongs to the trapped-ion native gate set
// {RX, RY, RZ, XX} produced by internal/decompose.
func (k Kind) Native() bool {
	switch k {
	case RX, RY, RZ, XX:
		return true
	}
	return false
}

// KindByName returns the kind with the given lowercase mnemonic (the
// Kind.String form, e.g. "cx", "rz").
func KindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("circuit: unknown gate kind %q", name)
}

// Gate is a single quantum operation on one, two, or three qubits.
// Qubits are logical indices before mapping and physical slot indices after.
type Gate struct {
	Kind   Kind
	Qubits []int
	// Theta is the rotation angle in radians for parameterized kinds
	// (RX, RY, RZ, CP, XX) and ignored otherwise.
	Theta float64
}

// NewGate constructs a gate, validating arity.
func NewGate(k Kind, theta float64, qubits ...int) (Gate, error) {
	g := Gate{Kind: k, Qubits: qubits, Theta: theta}
	if err := g.validate(); err != nil {
		return Gate{}, err
	}
	return g, nil
}

func (g Gate) validate() error {
	if got, want := len(g.Qubits), g.Kind.Arity(); got != want {
		return fmt.Errorf("circuit: gate %s wants %d qubits, got %d", g.Kind, want, got)
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("circuit: gate %s has negative qubit %d", g.Kind, q)
		}
		if seen[q] {
			return fmt.Errorf("circuit: gate %s repeats qubit %d", g.Kind, q)
		}
		seen[q] = true
	}
	if !g.Kind.Parameterized() && g.Theta != 0 {
		return fmt.Errorf("circuit: gate %s is not parameterized but has theta %v", g.Kind, g.Theta)
	}
	if math.IsNaN(g.Theta) || math.IsInf(g.Theta, 0) {
		return fmt.Errorf("circuit: gate %s has non-finite theta", g.Kind)
	}
	return nil
}

// IsTwoQubit reports whether the gate acts on exactly two qubits.
func (g Gate) IsTwoQubit() bool { return g.Kind.Arity() == 2 }

// Distance returns |q0 - q1| for a two-qubit gate. It panics for other
// arities; callers filter with IsTwoQubit first.
func (g Gate) Distance() int {
	if !g.IsTwoQubit() {
		panic(fmt.Sprintf("circuit: Distance on %d-qubit gate %s", g.Kind.Arity(), g.Kind))
	}
	d := g.Qubits[0] - g.Qubits[1]
	if d < 0 {
		d = -d
	}
	return d
}

// String renders the gate in a QASM-like single-line form.
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Kind.String())
	if g.Kind.Parameterized() {
		fmt.Fprintf(&b, "(%g)", g.Theta)
	}
	for i, q := range g.Qubits {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q%d", q)
	}
	return b.String()
}

// Circuit is an ordered gate list over a fixed qubit register.
type Circuit struct {
	numQubits int
	gates     []Gate
}

// New returns an empty circuit over n qubits. n must be positive.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{numQubits: n}
}

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.numQubits }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.gates) }

// Gate returns the i-th gate.
func (c *Circuit) Gate(i int) Gate { return c.gates[i] }

// Gates returns the underlying gate slice. Callers must not mutate it.
func (c *Circuit) Gates() []Gate { return c.gates }

// Add appends a gate after validating it against the register width.
func (c *Circuit) Add(g Gate) error {
	if err := g.validate(); err != nil {
		return err
	}
	for _, q := range g.Qubits {
		if q >= c.numQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, c.numQubits)
		}
	}
	c.gates = append(c.gates, g)
	return nil
}

// MustAdd appends a gate and panics on validation failure. It is intended
// for programmatic circuit construction where arguments are statically known.
func (c *Circuit) MustAdd(k Kind, theta float64, qubits ...int) {
	g, err := NewGate(k, theta, qubits...)
	if err != nil {
		panic(err)
	}
	if err := c.Add(g); err != nil {
		panic(err)
	}
}

// Builder conveniences. All panic on invalid arguments (programming errors).

// ApplyX appends an X gate.
func (c *Circuit) ApplyX(q int) { c.MustAdd(X, 0, q) }

// ApplyY appends a Y gate.
func (c *Circuit) ApplyY(q int) { c.MustAdd(Y, 0, q) }

// ApplyZ appends a Z gate.
func (c *Circuit) ApplyZ(q int) { c.MustAdd(Z, 0, q) }

// ApplyH appends a Hadamard gate.
func (c *Circuit) ApplyH(q int) { c.MustAdd(H, 0, q) }

// ApplyS appends an S (phase) gate.
func (c *Circuit) ApplyS(q int) { c.MustAdd(S, 0, q) }

// ApplySdg appends an S-dagger gate.
func (c *Circuit) ApplySdg(q int) { c.MustAdd(Sdg, 0, q) }

// ApplyT appends a T gate.
func (c *Circuit) ApplyT(q int) { c.MustAdd(T, 0, q) }

// ApplyTdg appends a T-dagger gate.
func (c *Circuit) ApplyTdg(q int) { c.MustAdd(Tdg, 0, q) }

// ApplyRX appends an Rx(theta) rotation.
func (c *Circuit) ApplyRX(theta float64, q int) { c.MustAdd(RX, theta, q) }

// ApplyRY appends an Ry(theta) rotation.
func (c *Circuit) ApplyRY(theta float64, q int) { c.MustAdd(RY, theta, q) }

// ApplyRZ appends an Rz(theta) rotation.
func (c *Circuit) ApplyRZ(theta float64, q int) { c.MustAdd(RZ, theta, q) }

// ApplyCNOT appends a controlled-NOT with control ctl and target tgt.
func (c *Circuit) ApplyCNOT(ctl, tgt int) { c.MustAdd(CNOT, 0, ctl, tgt) }

// ApplyCZ appends a controlled-Z gate.
func (c *Circuit) ApplyCZ(a, b int) { c.MustAdd(CZ, 0, a, b) }

// ApplyCP appends a controlled-phase gate with angle theta.
func (c *Circuit) ApplyCP(theta float64, a, b int) { c.MustAdd(CP, theta, a, b) }

// ApplySWAP appends a SWAP gate.
func (c *Circuit) ApplySWAP(a, b int) { c.MustAdd(SWAP, 0, a, b) }

// ApplyXX appends a Mølmer-Sørensen XX(theta) interaction.
func (c *Circuit) ApplyXX(theta float64, a, b int) { c.MustAdd(XX, theta, a, b) }

// ApplyCCX appends a Toffoli gate with controls c0, c1 and target tgt.
func (c *Circuit) ApplyCCX(c0, c1, tgt int) { c.MustAdd(CCX, 0, c0, c1, tgt) }

// ApplyMeasure appends a computational-basis measurement marker.
func (c *Circuit) ApplyMeasure(q int) { c.MustAdd(Measure, 0, q) }

// Fingerprint returns a stable content hash of the circuit: a hex-encoded
// SHA-256 over the register width and every gate's kind, rotation-angle bits,
// and qubit operands, in program order. Two circuits share a fingerprint iff
// they are gate-for-gate identical, so it keys content-addressed caches of
// compiled artifacts. The fingerprint covers only circuit content — device,
// noise, and compiler configuration must be keyed separately (or, as the
// compile cache does, held fixed per cache).
func (c *Circuit) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(c.numQubits))
	for _, g := range c.gates {
		put(uint64(g.Kind))
		put(math.Float64bits(g.Theta))
		put(uint64(len(g.Qubits)))
		for _, q := range g.Qubits {
			put(uint64(q))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// gateJSON is the stable wire form of one gate: the lowercase kind
// mnemonic, the qubit operands, and the rotation angle for parameterized
// kinds. It is shared by the linqd submission API and the remote backend.
type gateJSON struct {
	Kind   string  `json:"kind"`
	Qubits []int   `json:"qubits"`
	Theta  float64 `json:"theta,omitempty"`
}

// circuitJSON is the stable wire form of a circuit.
type circuitJSON struct {
	Qubits int        `json:"qubits"`
	Gates  []gateJSON `json:"gates"`
}

// MarshalJSON renders the circuit in its stable wire form:
//
//	{"qubits": 3, "gates": [{"kind": "h", "qubits": [0]},
//	                        {"kind": "cx", "qubits": [0, 1]},
//	                        {"kind": "rz", "qubits": [2], "theta": 0.25}]}
//
// The encoding is lossless: UnmarshalJSON reconstructs a gate-for-gate
// identical circuit (equal Fingerprint), which is what lets the remote
// backend ship arbitrary circuits to a linqd daemon.
func (c *Circuit) MarshalJSON() ([]byte, error) {
	out := circuitJSON{Qubits: c.numQubits, Gates: make([]gateJSON, len(c.gates))}
	for i, g := range c.gates {
		out.Gates[i] = gateJSON{Kind: g.Kind.String(), Qubits: g.Qubits, Theta: g.Theta}
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the MarshalJSON wire form, validating every gate
// against the register exactly as Add does.
func (c *Circuit) UnmarshalJSON(data []byte) error {
	var in circuitJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("circuit: %w", err)
	}
	if in.Qubits <= 0 {
		return fmt.Errorf("circuit: non-positive qubit count %d", in.Qubits)
	}
	parsed := Circuit{numQubits: in.Qubits, gates: make([]Gate, 0, len(in.Gates))}
	for i, gj := range in.Gates {
		kind, err := KindByName(gj.Kind)
		if err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		g, err := NewGate(kind, gj.Theta, gj.Qubits...)
		if err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		for _, q := range g.Qubits {
			if q >= parsed.numQubits {
				return fmt.Errorf("gate %d: qubit %d out of range [0,%d)", i, q, parsed.numQubits)
			}
		}
		parsed.gates = append(parsed.gates, g)
	}
	*c = parsed
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{numQubits: c.numQubits, gates: make([]Gate, len(c.gates))}
	copy(out.gates, c.gates)
	for i := range out.gates {
		qs := make([]int, len(out.gates[i].Qubits))
		copy(qs, out.gates[i].Qubits)
		out.gates[i].Qubits = qs
	}
	return out
}

// TwoQubitCount returns the number of two-qubit gates.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// CountKind returns the number of gates of the given kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// GateCounts returns a histogram of gate kinds.
func (c *Circuit) GateCounts() map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range c.gates {
		m[g.Kind]++
	}
	return m
}

// Depth returns the circuit depth under ASAP scheduling: the length of the
// longest chain of gates sharing qubits. Measure markers count like gates.
func (c *Circuit) Depth() int {
	depth := 0
	avail := make([]int, c.numQubits)
	for _, g := range c.gates {
		layer := 0
		for _, q := range g.Qubits {
			if avail[q] > layer {
				layer = avail[q]
			}
		}
		layer++
		for _, q := range g.Qubits {
			avail[q] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// GateDepths returns, for each gate index, its ASAP layer (1-based).
// Used by the Eq. 1 swap-insertion score, where Δ(g) is the layer distance
// between a candidate future gate and the gate being resolved.
func (c *Circuit) GateDepths() []int {
	depths := make([]int, len(c.gates))
	avail := make([]int, c.numQubits)
	for i, g := range c.gates {
		layer := 0
		for _, q := range g.Qubits {
			if avail[q] > layer {
				layer = avail[q]
			}
		}
		layer++
		for _, q := range g.Qubits {
			avail[q] = layer
		}
		depths[i] = layer
	}
	return depths
}

// Layers partitions gate indices into ASAP layers. Gates within a layer act
// on disjoint qubits and may execute in parallel.
func (c *Circuit) Layers() [][]int {
	depths := c.GateDepths()
	n := c.Depth()
	layers := make([][]int, n)
	for i, d := range depths {
		layers[d-1] = append(layers[d-1], i)
	}
	return layers
}

// QubitGateLists returns, for each qubit, the ordered gate indices touching
// it. This is the per-qubit dependency structure used by schedulers.
func (c *Circuit) QubitGateLists() [][]int {
	lists := make([][]int, c.numQubits)
	for i, g := range c.gates {
		for _, q := range g.Qubits {
			lists[q] = append(lists[q], i)
		}
	}
	return lists
}

// MaxTwoQubitDistance returns the largest |q0-q1| over two-qubit gates,
// or 0 if there are none.
func (c *Circuit) MaxTwoQubitDistance() int {
	max := 0
	for _, g := range c.gates {
		if g.IsTwoQubit() {
			if d := g.Distance(); d > max {
				max = d
			}
		}
	}
	return max
}

// Validate re-checks every gate against the register. A circuit built only
// through Add/MustAdd is always valid; Validate guards hand-assembled values.
func (c *Circuit) Validate() error {
	if c.numQubits <= 0 {
		return fmt.Errorf("circuit: non-positive qubit count %d", c.numQubits)
	}
	for i, g := range c.gates {
		if err := g.validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		for _, q := range g.Qubits {
			if q >= c.numQubits {
				return fmt.Errorf("gate %d: qubit %d out of range [0,%d)", i, q, c.numQubits)
			}
		}
	}
	return nil
}

// String renders the circuit as one gate per line, QASM-style.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d]\n", c.numQubits)
	for _, g := range c.gates {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
