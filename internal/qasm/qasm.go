// Package qasm reads and writes the OpenQASM 2.0 subset that covers the
// LinQ toolflow's gate set, so circuits can enter the pipeline from files
// produced by mainstream front ends (Qiskit, ScaffCC exports).
//
// Supported statements:
//
//	OPENQASM 2.0;                   // header (optional)
//	include "qelib1.inc";           // ignored
//	qreg q[64];                     // exactly one register
//	creg c[64];                     // accepted, ignored
//	h q[0]; x q[1]; y/z/s/sdg/t/tdg
//	rx(theta) q[0]; ry(...); rz(...);
//	cx q[0],q[1]; cz ...; swap ...; ccx q[0],q[1],q[2];
//	cp(theta) q[0],q[1];  cu1(theta) q[0],q[1];   // synonyms
//	rxx(theta) q[0],q[1];                          // XX interaction
//	measure q[0] -> c[0];
//	barrier ...;                    // ignored
//	// line comments
//
// Angle expressions support decimal literals, pi, unary minus, and the
// binary operators * and / (e.g. -pi/4, 3*pi/8, 0.25).
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// ParseError is a positioned parse failure: Line is the 1-based source line
// the offending statement is on (0 when the error concerns the whole file,
// e.g. a missing qreg declaration). Callers that relay parse failures —
// cmd/linqd turns them into HTTP 400 bodies — can unwrap it with errors.As
// to report an actionable location instead of a flat string.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error in the package's historical format.
func (e *ParseError) Error() string {
	if e.Line == 0 {
		return "qasm: " + e.Msg
	}
	return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg)
}

// Parse converts OpenQASM 2.0 source text into a circuit. Failures are
// returned as *ParseError carrying the offending line number.
func Parse(src string) (*circuit.Circuit, error) {
	p := &parser{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt); err != nil {
				return nil, &ParseError{Line: lineNo + 1, Msg: err.Error()}
			}
		}
	}
	if p.c == nil {
		return nil, &ParseError{Msg: "no qreg declaration found"}
	}
	return p.c, nil
}

type parser struct {
	c       *circuit.Circuit
	regName string
}

func (p *parser) statement(stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "barrier"), strings.HasPrefix(stmt, "creg"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		return p.qreg(stmt)
	case strings.HasPrefix(stmt, "measure"):
		return p.measure(stmt)
	}
	return p.gate(stmt)
}

func (p *parser) qreg(stmt string) error {
	if p.c != nil {
		return fmt.Errorf("multiple qreg declarations")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
	open := strings.Index(rest, "[")
	closeB := strings.Index(rest, "]")
	if open < 1 || closeB < open {
		return fmt.Errorf("malformed qreg %q", stmt)
	}
	name := strings.TrimSpace(rest[:open])
	n, err := strconv.Atoi(strings.TrimSpace(rest[open+1 : closeB]))
	if err != nil || n < 1 {
		return fmt.Errorf("bad qreg size in %q", stmt)
	}
	p.regName = name
	p.c = circuit.New(n)
	return nil
}

func (p *parser) measure(stmt string) error {
	if p.c == nil {
		return fmt.Errorf("measure before qreg")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "measure"))
	if i := strings.Index(rest, "->"); i >= 0 {
		rest = rest[:i]
	}
	q, err := p.qubit(strings.TrimSpace(rest))
	if err != nil {
		return err
	}
	p.c.ApplyMeasure(q)
	return nil
}

// gateNames maps QASM mnemonics (with synonyms) to kinds.
var gateNames = map[string]circuit.Kind{
	"id": circuit.I, "x": circuit.X, "y": circuit.Y, "z": circuit.Z,
	"h": circuit.H, "s": circuit.S, "sdg": circuit.Sdg,
	"t": circuit.T, "tdg": circuit.Tdg,
	"rx": circuit.RX, "ry": circuit.RY, "rz": circuit.RZ,
	"u1": circuit.RZ, // u1(λ) equals rz(λ) up to global phase
	"cx": circuit.CNOT, "cnot": circuit.CNOT, "cz": circuit.CZ,
	"cp": circuit.CP, "cu1": circuit.CP,
	"swap": circuit.SWAP, "rxx": circuit.XX,
	"ccx": circuit.CCX, "toffoli": circuit.CCX,
}

func (p *parser) gate(stmt string) error {
	if p.c == nil {
		return fmt.Errorf("gate before qreg")
	}
	name := stmt
	theta := 0.0
	hasAngle := false
	args := ""
	if i := strings.IndexAny(stmt, " \t("); i >= 0 {
		name = stmt[:i]
		rest := strings.TrimSpace(stmt[i:])
		if strings.HasPrefix(rest, "(") {
			closeB := strings.Index(rest, ")")
			if closeB < 0 {
				return fmt.Errorf("unterminated angle in %q", stmt)
			}
			var err error
			theta, err = parseAngle(rest[1:closeB])
			if err != nil {
				return err
			}
			hasAngle = true
			args = strings.TrimSpace(rest[closeB+1:])
		} else {
			args = rest
		}
	}
	kind, ok := gateNames[name]
	if !ok {
		return fmt.Errorf("unsupported gate %q", name)
	}
	if kind.Parameterized() && !hasAngle {
		return fmt.Errorf("gate %q requires an angle parameter", name)
	}
	if args == "" {
		return fmt.Errorf("gate %q missing operands", name)
	}

	var qs []int
	for _, a := range strings.Split(args, ",") {
		q, err := p.qubit(strings.TrimSpace(a))
		if err != nil {
			return err
		}
		qs = append(qs, q)
	}
	if !kind.Parameterized() {
		theta = 0
	}
	g, err := circuit.NewGate(kind, theta, qs...)
	if err != nil {
		return err
	}
	return p.c.Add(g)
}

func (p *parser) qubit(ref string) (int, error) {
	open := strings.Index(ref, "[")
	closeB := strings.Index(ref, "]")
	if open < 1 || closeB < open {
		return 0, fmt.Errorf("malformed qubit reference %q", ref)
	}
	name := strings.TrimSpace(ref[:open])
	if name != p.regName {
		return 0, fmt.Errorf("unknown register %q (declared %q)", name, p.regName)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(ref[open+1 : closeB]))
	if err != nil {
		return 0, fmt.Errorf("bad qubit index in %q", ref)
	}
	if idx < 0 || idx >= p.c.NumQubits() {
		return 0, fmt.Errorf("qubit %d out of range [0,%d)", idx, p.c.NumQubits())
	}
	return idx, nil
}

// parseAngle evaluates the angle grammar: term (('*'|'/') term)* with terms
// pi, decimal literals, and a leading unary minus.
func parseAngle(expr string) (float64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty angle")
	}
	neg := false
	if strings.HasPrefix(expr, "-") {
		neg = true
		expr = strings.TrimSpace(expr[1:])
	}
	// Tokenize into terms and operators, left to right.
	val := 0.0
	cur := strings.Builder{}
	ops := []byte{'*'} // pretend the first term is multiplied into 1
	terms := []string{}
	for i := 0; i < len(expr); i++ {
		ch := expr[i]
		if ch == '*' || ch == '/' {
			terms = append(terms, strings.TrimSpace(cur.String()))
			cur.Reset()
			ops = append(ops, ch)
			continue
		}
		cur.WriteByte(ch)
	}
	terms = append(terms, strings.TrimSpace(cur.String()))
	if len(terms) != len(ops) {
		return 0, fmt.Errorf("malformed angle %q", expr)
	}
	val = 1
	for i, term := range terms {
		v, err := parseTerm(term)
		if err != nil {
			return 0, err
		}
		switch ops[i] {
		case '*':
			val *= v
		case '/':
			if v == 0 {
				return 0, fmt.Errorf("division by zero in angle %q", expr)
			}
			val /= v
		}
	}
	if neg {
		val = -val
	}
	return val, nil
}

func parseTerm(term string) (float64, error) {
	if term == "pi" || term == "PI" || term == "π" {
		return math.Pi, nil
	}
	v, err := strconv.ParseFloat(term, 64)
	if err != nil {
		return 0, fmt.Errorf("bad angle term %q", term)
	}
	return v, nil
}

// Write renders a circuit as OpenQASM 2.0 source.
func Write(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits())
	hasMeasure := false
	for _, g := range c.Gates() {
		if g.Kind == circuit.Measure {
			hasMeasure = true
		}
	}
	if hasMeasure {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits())
	}
	for _, g := range c.Gates() {
		name, err := mnemonic(g.Kind)
		if err != nil {
			return "", err
		}
		if g.Kind == circuit.Measure {
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Qubits[0])
			continue
		}
		b.WriteString(name)
		if g.Kind.Parameterized() {
			fmt.Fprintf(&b, "(%s)", formatAngle(g.Theta))
		}
		for i, q := range g.Qubits {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String(), nil
}

func mnemonic(k circuit.Kind) (string, error) {
	switch k {
	case circuit.I:
		return "id", nil
	case circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.Sdg,
		circuit.T, circuit.Tdg, circuit.RX, circuit.RY, circuit.RZ,
		circuit.CZ, circuit.CP, circuit.SWAP, circuit.CCX:
		return k.String(), nil
	case circuit.CNOT:
		return "cx", nil
	case circuit.XX:
		return "rxx", nil
	case circuit.Measure:
		return "measure", nil
	}
	return "", fmt.Errorf("qasm: no mnemonic for kind %v", k)
}

// formatAngle renders common π fractions symbolically, everything else as a
// decimal — keeping round-trips exact for the decompositions' angles.
func formatAngle(theta float64) string {
	for _, f := range []struct {
		val float64
		txt string
	}{
		{math.Pi, "pi"}, {-math.Pi, "-pi"},
		{math.Pi / 2, "pi/2"}, {-math.Pi / 2, "-pi/2"},
		{math.Pi / 4, "pi/4"}, {-math.Pi / 4, "-pi/4"},
		{math.Pi / 8, "pi/8"}, {-math.Pi / 8, "-pi/8"},
	} {
		if theta == f.val {
			return f.txt
		}
	}
	return strconv.FormatFloat(theta, 'g', 17, 64)
}
