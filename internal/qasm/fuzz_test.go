package qasm

import (
	"errors"
	"testing"
)

// FuzzQASMParse drives the OpenQASM parser with arbitrary source text and
// checks the package's stated contracts rather than specific outputs:
//
//   - Parse never panics, whatever the input
//   - every failure is a *ParseError (callers unwrap it with errors.As to
//     surface line numbers; a bare fmt.Errorf here is an API regression)
//   - an accepted circuit is internally consistent: every gate's qubits lie
//     inside the declared register
//   - accepted circuits survive Write → Parse with an identical fingerprint
//     (the serving stack depends on this to relay programs byte-for-byte)
func FuzzQASMParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[3];\nrz(pi/4) q[2];\nmeasure q[0] -> c[0];\n",
		"qreg q[1];\nrx(0.12345) q[0];\n",
		"qreg q[4];\nccx q[0],q[1],q[2];\nswap q[2],q[3];\n",
		"qreg q[2];\nrxx(pi/2) q[0],q[1];\n",
		"// comment only\n",
		"qreg q[0];\n",
		"h q[0];\n",               // gate before qreg
		"qreg q[2];\nh q[5];\n",   // out of range
		"qreg q[2];\nbogus q[0];", // unknown gate
		"OPENQASM 2.0;;;\nqreg q[-1];\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse error is not a *ParseError: %T %v", err, err)
			}
			if pe.Line < 0 {
				t.Fatalf("ParseError.Line = %d, want >= 0", pe.Line)
			}
			return
		}
		n := c.NumQubits()
		for i := 0; i < c.Len(); i++ {
			for _, q := range c.Gate(i).Qubits {
				if q < 0 || q >= n {
					t.Fatalf("gate %d uses qubit %d outside register [0,%d)", i, q, n)
				}
			}
		}
		out, err := Write(c)
		if err != nil {
			t.Fatalf("Write failed on a parsed circuit: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-Parse of Write output failed: %v\nsource:\n%s", err, out)
		}
		if got, want := back.Fingerprint(), c.Fingerprint(); got != want {
			t.Fatalf("round-trip changed the circuit: fingerprint %s != %s\nqasm:\n%s", got, want, out)
		}
	})
}
