package qasm

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/qsim"
	"repro/internal/workloads"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
// prepare a Bell pair and measure
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
barrier q;
measure q[0] -> c[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 3 {
		t.Fatalf("qubits = %d, want 3", c.NumQubits())
	}
	wantKinds := []circuit.Kind{circuit.H, circuit.CNOT, circuit.RZ, circuit.Measure}
	if c.Len() != len(wantKinds) {
		t.Fatalf("gates = %d, want %d", c.Len(), len(wantKinds))
	}
	for i, k := range wantKinds {
		if c.Gate(i).Kind != k {
			t.Errorf("gate %d kind %v, want %v", i, c.Gate(i).Kind, k)
		}
	}
	if got := c.Gate(2).Theta; math.Abs(got-math.Pi/4) > 1e-15 {
		t.Errorf("rz theta = %g, want pi/4", got)
	}
}

func TestParseAngleForms(t *testing.T) {
	cases := map[string]float64{
		"pi":      math.Pi,
		"-pi":     -math.Pi,
		"pi/2":    math.Pi / 2,
		"-pi/4":   -math.Pi / 4,
		"3*pi/8":  3 * math.Pi / 8,
		"0.25":    0.25,
		"-1.5e-3": -1.5e-3,
		"2*pi":    2 * math.Pi,
		"pi/2/2":  math.Pi / 4,
	}
	for expr, want := range cases {
		got, err := parseAngle(expr)
		if err != nil {
			t.Errorf("parseAngle(%q): %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("parseAngle(%q) = %g, want %g", expr, got, want)
		}
	}
}

func TestParseAngleErrors(t *testing.T) {
	for _, expr := range []string{"", "pi/0", "foo", "1**2", "pi+1"} {
		if _, err := parseAngle(expr); err == nil {
			t.Errorf("parseAngle(%q) should fail", expr)
		}
	}
}

func TestParseSynonyms(t *testing.T) {
	src := "qreg q[3]; cnot q[0],q[1]; cu1(pi/2) q[0],q[1]; u1(pi) q[2]; toffoli q[0],q[1],q[2];"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []circuit.Kind{circuit.CNOT, circuit.CP, circuit.RZ, circuit.CCX}
	for i, k := range kinds {
		if c.Gate(i).Kind != k {
			t.Errorf("gate %d kind %v, want %v", i, c.Gate(i).Kind, k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no-qreg":       "h q[0];",
		"double-qreg":   "qreg q[2]; qreg r[2];",
		"bad-gate":      "qreg q[2]; frob q[0];",
		"bad-ref":       "qreg q[2]; h q0;",
		"wrong-reg":     "qreg q[2]; h r[0];",
		"out-of-range":  "qreg q[2]; h q[5];",
		"repeat-qubit":  "qreg q[2]; cx q[1],q[1];",
		"missing-angle": "qreg q[2]; rx q[0];",
		"empty":         "",
		"bad-size":      "qreg q[zero];",
		"unterminated":  "qreg q[2]; rx(pi q[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse should fail for %q", name, src)
		}
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	c := circuit.New(4)
	c.ApplyH(0)
	c.ApplyCNOT(0, 1)
	c.ApplyCP(math.Pi/8, 1, 2)
	c.ApplyXX(math.Pi/4, 2, 3)
	c.ApplyRZ(-math.Pi/2, 3)
	c.ApplyCCX(0, 1, 2)
	c.ApplySWAP(0, 3)
	c.ApplyTdg(1)

	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, src)
	}
	if back.Len() != c.Len() {
		t.Fatalf("round trip changed gate count %d -> %d", c.Len(), back.Len())
	}
	if !qsim.EquivalentUpToPhase(c, back, 3, 17) {
		t.Error("round trip changed the unitary")
	}
}

func TestWriteMeasureEmitsCreg(t *testing.T) {
	c := circuit.New(2)
	c.ApplyH(0)
	c.ApplyMeasure(0)
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "creg c[2];") || !strings.Contains(src, "measure q[0] -> c[0];") {
		t.Errorf("measurement output malformed:\n%s", src)
	}
}

func TestRXXRoundTrip(t *testing.T) {
	src := "qreg q[2]; rxx(pi/4) q[0],q[1];"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gate(0).Kind != circuit.XX || c.Gate(0).Theta != math.Pi/4 {
		t.Errorf("rxx parsed as %v(%g)", c.Gate(0).Kind, c.Gate(0).Theta)
	}
}

func TestWorkloadsRoundTrip(t *testing.T) {
	// Every Table II generator must survive a QASM round trip untouched in
	// gate structure (smaller instances keep the test fast).
	for _, bm := range []workloads.Benchmark{
		workloads.AdderN(3),
		workloads.BVSecret([]bool{true, false, true}),
		workloads.QAOAN(6, 2, 1),
		workloads.RCSGrid(2, 3, 4, 1),
		workloads.QFTN(5),
		workloads.GroverN(4, 0b1010, 1),
	} {
		src, err := Write(bm.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if back.Len() != bm.Circuit.Len() || back.NumQubits() != bm.Circuit.NumQubits() {
			t.Errorf("%s: round trip changed shape", bm.Name)
		}
		if !qsim.EquivalentUpToPhase(bm.Circuit, back, 2, 5) {
			t.Errorf("%s: round trip changed the unitary", bm.Name)
		}
	}
}

func TestPropertyRandomCircuitsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		bm := workloads.Random(6, 10, seed)
		src, err := Write(bm.Circuit)
		if err != nil {
			return false
		}
		back, err := Parse(src)
		if err != nil {
			return false
		}
		return qsim.EquivalentUpToPhase(bm.Circuit, back, 2, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatementsOnOneLine(t *testing.T) {
	c, err := Parse("qreg q[2]; h q[0]; cx q[0],q[1]")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("gates = %d, want 2", c.Len())
	}
}

// TestParseErrorsCarryLineNumbers: every malformed-input class surfaces a
// *ParseError whose Line points at the offending statement, so servers can
// return actionable 400s.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{
			name:     "unsupported gate",
			src:      "qreg q[4];\nh q[0];\nfrobnicate q[1];\n",
			wantLine: 3,
			wantMsg:  "unsupported gate",
		},
		{
			name:     "gate before qreg",
			src:      "h q[0];\nqreg q[4];\n",
			wantLine: 1,
			wantMsg:  "gate before qreg",
		},
		{
			name:     "qubit out of range",
			src:      "qreg q[2];\ncx q[0],q[5];\n",
			wantLine: 2,
			wantMsg:  "out of range",
		},
		{
			name:     "unknown register",
			src:      "qreg q[2];\nh r[0];\n",
			wantLine: 2,
			wantMsg:  "unknown register",
		},
		{
			name:     "unterminated angle",
			src:      "qreg q[2];\n\nrx(pi/2 q[0];\n",
			wantLine: 3,
			wantMsg:  "unterminated angle",
		},
		{
			name:     "missing angle parameter",
			src:      "qreg q[2];\nrx q[0];\n",
			wantLine: 2,
			wantMsg:  "requires an angle",
		},
		{
			name:     "bad qreg size",
			src:      "qreg q[zero];\n",
			wantLine: 1,
			wantMsg:  "bad qreg size",
		},
		{
			name:     "multiple qregs",
			src:      "qreg q[2];\nqreg r[2];\n",
			wantLine: 2,
			wantMsg:  "multiple qreg declarations",
		},
		{
			name:     "division by zero angle",
			src:      "qreg q[2];\nrz(pi/0) q[0];\n",
			wantLine: 2,
			wantMsg:  "division by zero",
		},
		{
			name:     "no qreg at all",
			src:      "// just a comment\n",
			wantLine: 0,
			wantMsg:  "no qreg declaration",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("malformed input parsed successfully")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError: %v", err, err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (err: %v)", pe.Line, tc.wantLine, err)
			}
			if !strings.Contains(pe.Msg, tc.wantMsg) {
				t.Errorf("msg = %q, want substring %q", pe.Msg, tc.wantMsg)
			}
			if tc.wantLine > 0 {
				wantPrefix := fmt.Sprintf("qasm: line %d: ", tc.wantLine)
				if !strings.HasPrefix(err.Error(), wantPrefix) {
					t.Errorf("Error() = %q, want prefix %q", err.Error(), wantPrefix)
				}
			}
		})
	}
}
