package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/noise"
	"repro/internal/schedule"
	"repro/internal/swapins"
	"repro/internal/workloads"
)

func compile(t *testing.T, c *circuit.Circuit, dev device.TILT) (*circuit.Circuit, *schedule.Schedule) {
	t.Helper()
	r, err := (swapins.LinQ{}).Insert(context.Background(), c, mapping.Identity(dev.NumIons), dev, swapins.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Tape(context.Background(), r.Physical, dev)
	if err != nil {
		t.Fatal(err)
	}
	return r.Physical, s
}

func TestSingleGateFidelityMatchesEq4(t *testing.T) {
	dev := device.TILT{NumIons: 8, HeadSize: 8}
	p := noise.Default()
	c := circuit.New(8)
	c.ApplyXX(math.Pi/4, 0, 3)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	// One move (the initial placement), so quanta = k(8).
	k := p.ShuttleQuanta(8)
	want := 1 - p.TwoQubitError(p.GateTime(3), k)
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f", res.SuccessRate, want)
	}
	if res.TwoQubitGates != 1 || res.OneQubitGates != 0 || res.SwapGates != 0 {
		t.Errorf("census = %d/%d/%d", res.OneQubitGates, res.TwoQubitGates, res.SwapGates)
	}
}

func TestSwapCostsThreeTwoQubitGates(t *testing.T) {
	dev := device.TILT{NumIons: 8, HeadSize: 8}
	p := noise.Default()
	c := circuit.New(8)
	c.ApplySWAP(0, 2)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	k := p.ShuttleQuanta(8)
	e := p.TwoQubitError(p.GateTime(2), k)
	want := math.Pow(1-e, 3)
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f", res.SuccessRate, want)
	}
	if res.SwapGates != 1 {
		t.Errorf("SwapGates = %d, want 1", res.SwapGates)
	}
}

func TestLaterMovesDegradeFidelity(t *testing.T) {
	// Two identical gates in distant windows: the second executes after
	// one more move, so it must contribute a lower fidelity.
	dev := device.TILT{NumIons: 32, HeadSize: 4}
	p := noise.Default()
	c := circuit.New(32)
	c.ApplyXX(math.Pi/4, 0, 1)
	c.ApplyXX(math.Pi/4, 30, 31)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 2 {
		t.Fatalf("Moves = %d, want 2", res.Moves)
	}
	k := p.ShuttleQuanta(32)
	f1 := 1 - p.TwoQubitError(p.GateTime(1), 1*k)
	f2 := 1 - p.TwoQubitError(p.GateTime(1), 2*k)
	if f2 >= f1 {
		t.Fatal("test premise broken: second move should be worse")
	}
	want := f1 * f2
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f", res.SuccessRate, want)
	}
}

func TestCoolingIntervalRestoresFidelity(t *testing.T) {
	// With sympathetic cooling every move, quanta never accumulate.
	dev := device.TILT{NumIons: 64, HeadSize: 8}
	bm := workloads.QFTN(16)
	p := noise.Default()
	phys, sched := compile(t, decomposed(bm.Circuit), dev)
	base, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	p.CoolingInterval = 1
	cooled, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if cooled.LogSuccess <= base.LogSuccess {
		t.Errorf("cooling did not help: cooled=%g base=%g",
			cooled.LogSuccess, base.LogSuccess)
	}
}

func TestCoolingFiresAfterIntervalBoundary(t *testing.T) {
	// Regression: re-cooling happens *after* every C-th move, so the gates
	// of move C still see the full C·k quanta. The old moves%C accounting
	// zeroed the quanta on move C itself, silently erasing the hottest move
	// of every cooling period.
	dev := device.TILT{NumIons: 64, HeadSize: 4}
	p := noise.Default()
	p.CoolingInterval = 2
	c := circuit.New(64)
	c.ApplyXX(math.Pi/4, 0, 1)   // move 1: quanta k
	c.ApplyXX(math.Pi/4, 30, 31) // move 2: quanta 2k (cooling fires after)
	c.ApplyXX(math.Pi/4, 60, 61) // move 3: quanta k again
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 3 {
		t.Fatalf("Moves = %d, want 3", res.Moves)
	}
	k := p.ShuttleQuanta(64)
	f1 := 1 - p.TwoQubitError(p.GateTime(1), 1*k)
	f2 := 1 - p.TwoQubitError(p.GateTime(1), 2*k)
	want := f1 * f2 * f1
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f (move 2 must see 2k quanta)", res.SuccessRate, want)
	}
}

func TestCoolingEveryMovePinsQuantaAtOneMove(t *testing.T) {
	// The paper's sympathetic-cooling ablation at interval 1: the chain is
	// re-cooled after every move, so each gate window sees exactly one
	// move's worth of heating — never zero (the shuttle that delivered the
	// head still heats the chain).
	dev := device.TILT{NumIons: 8, HeadSize: 8}
	p := noise.Default()
	p.CoolingInterval = 1
	c := circuit.New(8)
	c.ApplyXX(math.Pi/4, 0, 3)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	k := p.ShuttleQuanta(8)
	want := 1 - p.TwoQubitError(p.GateTime(3), k)
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f (one move of quanta, not zero)", res.SuccessRate, want)
	}
	unphysical := 1 - p.TwoQubitError(p.GateTime(3), 0)
	if math.Abs(res.SuccessRate-unphysical) < 1e-15 {
		t.Error("interval-1 cooling must not erase the heating of the current move")
	}
}

func TestOneQubitGatesUseConstantError(t *testing.T) {
	dev := device.TILT{NumIons: 8, HeadSize: 8}
	p := noise.Default()
	c := circuit.New(8)
	for i := 0; i < 5; i++ {
		c.ApplyRX(0.1, i)
	}
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-p.OneQubitError, 5)
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("success = %.15f, want %.15f", res.SuccessRate, want)
	}
}

func TestExecTimeIncludesMovesAndGates(t *testing.T) {
	dev := device.TILT{NumIons: 32, HeadSize: 4}
	p := noise.Default()
	c := circuit.New(32)
	c.ApplyXX(math.Pi/4, 0, 1)
	c.ApplyXX(math.Pi/4, 30, 31)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	moveTime := p.MoveTime(sched.Dist)
	gateTime := 2 * p.GateTime(1)
	want := moveTime + gateTime
	if math.Abs(res.ExecTimeUs-want) > 1e-9 {
		t.Errorf("ExecTimeUs = %g, want %g", res.ExecTimeUs, want)
	}
}

func TestParallelGatesShareWallClock(t *testing.T) {
	// Two disjoint gates in one window should take one gate time, not two.
	dev := device.TILT{NumIons: 8, HeadSize: 8}
	p := noise.Default()
	c := circuit.New(8)
	c.ApplyXX(math.Pi/4, 0, 1)
	c.ApplyXX(math.Pi/4, 2, 3)
	phys, sched := compile(t, c, dev)
	res, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.GateTime(1); math.Abs(res.ExecTimeUs-want) > 1e-9 {
		t.Errorf("ExecTimeUs = %g, want %g (parallel execution)", res.ExecTimeUs, want)
	}
}

func TestLogSuccessStaysFiniteOnDeepCircuits(t *testing.T) {
	dev := device.TILT{NumIons: 24, HeadSize: 8}
	bm := workloads.QFTN(24)
	phys, sched := compile(t, decomposed(bm.Circuit), dev)
	res, err := Simulate(context.Background(), phys, sched, dev, noise.Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.LogSuccess, 0) || math.IsNaN(res.LogSuccess) {
		t.Fatalf("LogSuccess = %g", res.LogSuccess)
	}
	if res.LogSuccess >= 0 {
		t.Errorf("LogSuccess = %g, want < 0", res.LogSuccess)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	dev := device.TILT{NumIons: 8, HeadSize: 4}
	c := circuit.New(8)
	c.ApplyH(0)
	sched := &schedule.Schedule{} // empty: misses the gate
	if _, err := Simulate(context.Background(), c, sched, dev, noise.Default()); err == nil {
		t.Error("schedule missing gates should be rejected")
	}
	good, err := schedule.Tape(context.Background(), c, dev)
	if err != nil {
		t.Fatal(err)
	}
	bad := noise.Default()
	bad.Gamma = -1
	if _, err := Simulate(context.Background(), c, good, dev, bad); err == nil {
		t.Error("invalid noise params should be rejected")
	}
}

func TestSimulateIdealNoHeating(t *testing.T) {
	p := noise.Default()
	dev := device.IdealTI{NumIons: 8}
	c := circuit.New(8)
	c.ApplyXX(math.Pi/4, 0, 7)
	res, err := SimulateIdeal(context.Background(), c, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - p.TwoQubitError(p.GateTime(7), 0)
	if math.Abs(res.SuccessRate-want) > 1e-12 {
		t.Errorf("ideal success = %.15f, want %.15f", res.SuccessRate, want)
	}
	if res.Moves != 0 {
		t.Errorf("ideal Moves = %d, want 0", res.Moves)
	}
}

func TestIdealBeatsTILT(t *testing.T) {
	bm := workloads.QFTN(16)
	c := decomposed(bm.Circuit)
	dev := device.TILT{NumIons: 16, HeadSize: 4}
	p := noise.Default()
	phys, sched := compile(t, c, dev)
	tilt, err := Simulate(context.Background(), phys, sched, dev, p)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := SimulateIdeal(context.Background(), c, device.IdealTI{NumIons: 16}, p)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.LogSuccess <= tilt.LogSuccess {
		t.Errorf("ideal (%g) should beat TILT (%g)", ideal.LogSuccess, tilt.LogSuccess)
	}
}

func TestPropertySuccessRateInUnitInterval(t *testing.T) {
	f := func(seed int64, headRaw uint8) bool {
		n := 12
		dev := device.TILT{NumIons: n, HeadSize: 3 + int(headRaw)%5}
		bm := workloads.Random(n, 15, seed)
		r, err := (swapins.LinQ{}).Insert(context.Background(), bm.Circuit, mapping.Identity(n), dev, swapins.Options{})
		if err != nil {
			return false
		}
		s, err := schedule.Tape(context.Background(), r.Physical, dev)
		if err != nil {
			return false
		}
		res, err := Simulate(context.Background(), r.Physical, s, dev, noise.Default())
		if err != nil {
			return false
		}
		return res.SuccessRate >= 0 && res.SuccessRate <= 1 &&
			res.LogSuccess <= 0 && res.ExecTimeUs >= 0 &&
			res.MeanTwoQubitFidelity >= 0 && res.MeanTwoQubitFidelity <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// decomposed lowers a benchmark circuit to arity ≤ 2 for the pipeline.
func decomposed(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits())
	for _, g := range c.Gates() {
		if len(g.Qubits) <= 2 {
			out.MustAdd(g.Kind, g.Theta, g.Qubits...)
			continue
		}
		// Only CCX appears at arity 3 in workloads; route through a fresh
		// SWAP-free identity — tests use QFT (no CCX), so panic loudly.
		panic("decomposed: unexpected arity-3 gate in test workload")
	}
	return out
}
