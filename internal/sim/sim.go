// Package sim estimates program success rate and execution time for a
// scheduled TILT execution (paper §IV-E).
//
// Success rate is the product of per-gate fidelities: single-qubit gates
// carry a constant error; two-qubit gates follow Eq. 4 with motional quanta
// q = m·k after m tape moves (k = k₀√n per move, Eq. 3 gate times); SWAP
// gates cost three two-qubit gates at their span. The product is accumulated
// in log space so QFT-scale results (~1e-40) stay representable.
//
// Execution time follows Eq. 5: shuttling time plus the gate critical path —
// tape moves are global barriers (no gate fires mid-shuttle), and gates
// within one head placement run concurrently subject to qubit availability.
package sim

//lint:deterministic-package

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/noise"
	"repro/internal/schedule"
)

// cancelCheckStride is how many schedule steps / gates run between context
// checks; a power of two so the check compiles to a mask.
const cancelCheckStride = 1024

// Result reports the simulated metrics of one compiled program.
type Result struct {
	// SuccessRate is exp(LogSuccess); it underflows to 0 for very deep
	// circuits — use LogSuccess for comparisons.
	SuccessRate float64
	// LogSuccess is the natural log of the success probability.
	LogSuccess float64
	// ExecTimeUs is the Eq. 5 execution time estimate in microseconds.
	ExecTimeUs float64
	// Moves and DistSpacings echo the schedule's shuttle totals.
	Moves        int
	DistSpacings int
	// DistUm is the shuttle travel in µm (spacings × ion spacing).
	DistUm float64
	// Gate census.
	OneQubitGates int
	TwoQubitGates int // two-qubit gates excluding SWAPs
	SwapGates     int
	// MeanTwoQubitFidelity averages the Eq. 4 fidelity over all two-qubit
	// gate applications (SWAPs count three times).
	MeanTwoQubitFidelity float64
}

// Simulate evaluates the scheduled circuit on a TILT device under the given
// noise parameters. Cancellation of ctx is observed between schedule steps.
func Simulate(ctx context.Context, c *circuit.Circuit, sched *schedule.Schedule, dev device.TILT, p noise.Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(c, dev); err != nil {
		return nil, fmt.Errorf("sim: invalid schedule: %w", err)
	}

	k := p.ShuttleQuanta(dev.NumIons)
	res := &Result{Moves: sched.Moves, DistSpacings: sched.Dist}
	res.DistUm = float64(sched.Dist) * p.IonSpacingUm

	logF := 0.0
	log1q := math.Log1p(-p.OneQubitError)
	var fidSum float64
	var fidN int

	avail := make([]float64, dev.NumIons) // per-qubit ready time, µs
	clock := 0.0                          // global barrier time
	prevPos := -1
	movesSoFar := 0

	for si, st := range sched.Steps {
		if si%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// The move to this placement: a global barrier.
		if prevPos >= 0 {
			span := st.Pos - prevPos
			if span < 0 {
				span = -span
			}
			for _, a := range avail {
				if a > clock {
					clock = a
				}
			}
			clock += p.MoveTime(span)
		}
		prevPos = st.Pos
		movesSoFar++
		quanta := p.EffectiveQuanta(movesSoFar, k)

		for _, gi := range st.Gates {
			g := c.Gate(gi)
			switch {
			case g.Kind == circuit.Measure:
				// Measurement error is out of scope (paper §IV-E).
			case !g.IsTwoQubit():
				logF += log1q
				res.OneQubitGates++
				start := math.Max(clock, avail[g.Qubits[0]])
				avail[g.Qubits[0]] = start + p.OneQubitTimeUs
			case g.Kind == circuit.SWAP:
				d := g.Distance()
				err2 := p.TwoQubitError(p.GateTime(d), quanta)
				logF += 3 * safeLog1p(-err2)
				fidSum += 3 * (1 - err2)
				fidN += 3
				res.SwapGates++
				applyTwoQubitTime(avail, clock, g, 3*p.GateTime(d))
			default:
				d := g.Distance()
				err2 := p.TwoQubitError(p.GateTime(d), quanta)
				logF += safeLog1p(-err2)
				fidSum += 1 - err2
				fidN++
				res.TwoQubitGates++
				applyTwoQubitTime(avail, clock, g, p.GateTime(d))
			}
		}
	}

	res.LogSuccess = logF
	res.SuccessRate = math.Exp(logF)
	for _, a := range avail {
		if a > clock {
			clock = a
		}
	}
	res.ExecTimeUs = clock
	if fidN > 0 {
		res.MeanTwoQubitFidelity = fidSum / float64(fidN)
	}
	return res, nil
}

// applyTwoQubitTime advances both operands' availability by the gate time,
// starting when both are free and the barrier clock has passed.
func applyTwoQubitTime(avail []float64, clock float64, g circuit.Gate, tau float64) {
	start := clock
	for _, q := range g.Qubits {
		if avail[q] > start {
			start = avail[q]
		}
	}
	end := start + tau
	for _, q := range g.Qubits {
		avail[q] = end
	}
}

// safeLog1p guards log1p(-err) against err == 1 (total loss), returning a
// very negative but finite log-fidelity so accumulations stay comparable.
func safeLog1p(x float64) float64 {
	if x <= -1 {
		return -745 // exp(-745) is the smallest positive float64
	}
	return math.Log1p(x)
}

// SimulateIdeal evaluates the circuit on an ideal fully connected trapped-
// ion device (paper §VI-B "Ideal TI"): no swaps, no moves, Eq. 4 with zero
// quanta, gate distances given directly by qubit separation on the chain.
// Cancellation of ctx is observed between gates.
func SimulateIdeal(ctx context.Context, c *circuit.Circuit, dev device.IdealTI, p noise.Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > dev.NumIons {
		return nil, fmt.Errorf("sim: circuit width %d exceeds chain %d", c.NumQubits(), dev.NumIons)
	}
	res := &Result{}
	logF := 0.0
	log1q := math.Log1p(-p.OneQubitError)
	var fidSum float64
	var fidN int
	avail := make([]float64, dev.NumIons)

	for gi, g := range c.Gates() {
		if gi%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		switch {
		case g.Kind == circuit.Measure:
		case !g.IsTwoQubit():
			logF += log1q
			res.OneQubitGates++
			avail[g.Qubits[0]] += p.OneQubitTimeUs
		default:
			d := g.Distance()
			tau := p.GateTime(d)
			err2 := p.TwoQubitError(tau, 0)
			n := 1
			if g.Kind == circuit.SWAP {
				n = 3
				res.SwapGates++
			} else {
				res.TwoQubitGates++
			}
			logF += float64(n) * safeLog1p(-err2)
			fidSum += float64(n) * (1 - err2)
			fidN += n
			applyTwoQubitTime(avail, 0, g, float64(n)*tau)
		}
	}
	res.LogSuccess = logF
	res.SuccessRate = math.Exp(logF)
	for _, a := range avail {
		if a > res.ExecTimeUs {
			res.ExecTimeUs = a
		}
	}
	if fidN > 0 {
		res.MeanTwoQubitFidelity = fidSum / float64(fidN)
	}
	return res, nil
}
