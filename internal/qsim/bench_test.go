package qsim

import (
	"testing"

	"repro/internal/workloads"
)

// BenchmarkRunQFT16 measures statevector simulation of a 16-qubit QFT —
// the verification substrate's hot path.
func BenchmarkRunQFT16(b *testing.B) {
	bm := workloads.QFTN(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(16)
		s.Run(bm.Circuit)
	}
}

// BenchmarkEquivalenceCheck measures one unitary-equivalence trial on an
// 8-qubit random circuit pair.
func BenchmarkEquivalenceCheck(b *testing.B) {
	bm := workloads.Random(8, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !EquivalentUpToPhase(bm.Circuit, bm.Circuit, 1, int64(i)) {
			b.Fatal("self-equivalence failed")
		}
	}
}
