package qsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const eps = 1e-10

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Probability(0) != 1 {
		t.Fatalf("P(|000>) = %g, want 1", s.Probability(0))
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("norm = %g, want 1", s.Norm())
	}
}

func TestNewStatePanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, MaxQubits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState(%d) should panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestXFlipsQubit(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.X, 0, 1))
	if p := s.Probability(0b10); math.Abs(p-1) > eps {
		t.Errorf("P(|10>) = %g, want 1", p)
	}
}

func TestHCreatesSuperposition(t *testing.T) {
	s := NewState(1)
	s.ApplyGate(mustGate(t, circuit.H, 0, 0))
	if p0, p1 := s.Probability(0), s.Probability(1); math.Abs(p0-0.5) > eps || math.Abs(p1-0.5) > eps {
		t.Errorf("probabilities = %g, %g, want 0.5 each", p0, p1)
	}
	s.ApplyGate(mustGate(t, circuit.H, 0, 0))
	if p0 := s.Probability(0); math.Abs(p0-1) > eps {
		t.Errorf("H^2 != I: P(0) = %g", p0)
	}
}

func TestCNOTTruthTable(t *testing.T) {
	// |10> -> |11> with control qubit 1 (high bit in our index order).
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.X, 0, 1)) // set control
	s.ApplyGate(mustGate(t, circuit.CNOT, 0, 1, 0))
	if p := s.Probability(0b11); math.Abs(p-1) > eps {
		t.Errorf("CNOT|10> : P(|11>) = %g, want 1", p)
	}
	// Control clear: target untouched.
	s2 := NewState(2)
	s2.ApplyGate(mustGate(t, circuit.CNOT, 0, 1, 0))
	if p := s2.Probability(0); math.Abs(p-1) > eps {
		t.Errorf("CNOT|00> : P(|00>) = %g, want 1", p)
	}
}

func TestSWAPExchangesAmplitudes(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.X, 0, 0)) // |01>
	s.ApplyGate(mustGate(t, circuit.SWAP, 0, 0, 1))
	if p := s.Probability(0b10); math.Abs(p-1) > eps {
		t.Errorf("SWAP|01> : P(|10>) = %g, want 1", p)
	}
}

func TestCCXTruthTable(t *testing.T) {
	s := NewState(3)
	s.ApplyGate(mustGate(t, circuit.X, 0, 0))
	s.ApplyGate(mustGate(t, circuit.X, 0, 1))
	s.ApplyGate(mustGate(t, circuit.CCX, 0, 0, 1, 2))
	if p := s.Probability(0b111); math.Abs(p-1) > eps {
		t.Errorf("CCX|011> : P(|111>) = %g, want 1", p)
	}
	s2 := NewState(3)
	s2.ApplyGate(mustGate(t, circuit.X, 0, 0))
	s2.ApplyGate(mustGate(t, circuit.CCX, 0, 0, 1, 2))
	if p := s2.Probability(0b001); math.Abs(p-1) > eps {
		t.Errorf("CCX|001> should be unchanged: P = %g", p)
	}
}

func TestCZAndCPPhases(t *testing.T) {
	// CZ == CP(π) on random states.
	a := circuit.New(2)
	a.ApplyCZ(0, 1)
	b := circuit.New(2)
	b.ApplyCP(math.Pi, 0, 1)
	if !EquivalentUpToPhase(a, b, 5, 42) {
		t.Error("CZ != CP(π)")
	}
}

func TestXXAgainstKnownAction(t *testing.T) {
	// XX(π/2) = exp(-iπ/2 XX) maps |00> -> -i|11>.
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.XX, math.Pi/2, 0, 1))
	if p := s.Probability(0b11); math.Abs(p-1) > eps {
		t.Errorf("XX(π/2)|00> : P(|11>) = %g, want 1", p)
	}
	im := imag(s.Amplitudes()[0b11])
	if math.Abs(im+1) > eps {
		t.Errorf("XX(π/2)|00> amplitude imag = %g, want -1", im)
	}
}

func TestRotationPeriodicity(t *testing.T) {
	// RX(2π) = -I: fidelity with original state must be 1 (global phase).
	c1 := circuit.New(1)
	c1.ApplyRX(2*math.Pi, 0)
	c2 := circuit.New(1)
	if !EquivalentUpToPhase(c1, c2, 5, 7) {
		t.Error("RX(2π) should equal identity up to phase")
	}
}

func TestUnitarityPreservesNorm(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		s := NewRandomState(n, rng)
		kinds := []circuit.Kind{
			circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.Sdg,
			circuit.T, circuit.Tdg, circuit.RX, circuit.RY, circuit.RZ,
			circuit.CNOT, circuit.CZ, circuit.CP, circuit.SWAP, circuit.XX,
			circuit.CCX,
		}
		for i := 0; i < int(gRaw)%20; i++ {
			k := kinds[rng.Intn(len(kinds))]
			qs := rng.Perm(n)[:k.Arity()]
			theta := 0.0
			if k.Parameterized() {
				theta = rng.Float64() * 2 * math.Pi
			}
			g, err := circuit.NewGate(k, theta, qs...)
			if err != nil {
				return false
			}
			s.ApplyGate(g)
		}
		return math.Abs(s.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFidelityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandomState(5, rng)
	b := NewRandomState(5, rng)
	f := a.FidelityWith(b)
	if f < 0 || f > 1+eps {
		t.Errorf("fidelity %g out of [0,1]", f)
	}
	if self := a.FidelityWith(a); math.Abs(self-1) > eps {
		t.Errorf("self fidelity = %g, want 1", self)
	}
}

func TestEquivalentUpToPhaseDetectsDifference(t *testing.T) {
	a := circuit.New(2)
	a.ApplyCNOT(0, 1)
	b := circuit.New(2)
	b.ApplyCNOT(1, 0)
	if EquivalentUpToPhase(a, b, 5, 3) {
		t.Error("CNOT(0,1) and CNOT(1,0) reported equivalent")
	}
	c := circuit.New(3)
	if EquivalentUpToPhase(a, c, 1, 3) {
		t.Error("different widths reported equivalent")
	}
}

func TestRunPermuted(t *testing.T) {
	// X on logical 0 permuted to physical 2 flips bit 2.
	c := circuit.New(3)
	c.ApplyX(0)
	s := NewState(3)
	s.RunPermuted(c, []int{2, 0, 1})
	if p := s.Probability(0b100); math.Abs(p-1) > eps {
		t.Errorf("permuted X: P(|100>) = %g, want 1", p)
	}
}

func TestApplyMat4QubitOrderMatters(t *testing.T) {
	// CNOT as a Matrix4 with q0=target low bit: control=q1.
	cnot := Matrix4{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.X, 0, 1))
	s.ApplyMat4(cnot, 0, 1) // q0 = 0 (target), q1 = 1 (control)
	if p := s.Probability(0b11); math.Abs(p-1) > eps {
		t.Errorf("Matrix4 CNOT: P(|11>) = %g, want 1", p)
	}
}

func TestApplyMat4PanicsOnSameQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ApplyMat4 on identical qubits should panic")
		}
	}()
	NewState(2).ApplyMat4(Matrix4{}, 1, 1)
}

func TestRunPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with wider circuit should panic")
		}
	}()
	c := circuit.New(3)
	NewState(2).Run(c)
}

func mustGate(t *testing.T, k circuit.Kind, theta float64, qs ...int) circuit.Gate {
	t.Helper()
	g, err := circuit.NewGate(k, theta, qs...)
	if err != nil {
		t.Fatalf("NewGate(%v): %v", k, err)
	}
	return g
}

func TestSampleMatchesDistribution(t *testing.T) {
	// H|0>: ~50/50 over 4000 shots.
	s := NewState(1)
	s.ApplyGate(mustGate(t, circuit.H, 0, 0))
	counts := s.SampleCounts(4000, 42)
	if counts[0]+counts[1] != 4000 {
		t.Fatalf("lost shots: %v", counts)
	}
	if counts[0] < 1800 || counts[0] > 2200 {
		t.Errorf("P(0) samples = %d/4000, want ≈2000", counts[0])
	}
}

func TestSampleDeterministicBasisState(t *testing.T) {
	s := NewState(3)
	s.ApplyGate(mustGate(t, circuit.X, 0, 1))
	counts := s.SampleCounts(100, 7)
	if counts[0b010] != 100 {
		t.Errorf("basis state sampling: %v", counts)
	}
}

func TestSampleCountsPanicsOnNegativeShots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative shots should panic")
		}
	}()
	NewState(1).SampleCounts(-1, 0)
}

func TestExpectation(t *testing.T) {
	// GHZ over 2 qubits: E[popcount] = 0.5*0 + 0.5*2 = 1.
	s := NewState(2)
	s.ApplyGate(mustGate(t, circuit.H, 0, 0))
	s.ApplyGate(mustGate(t, circuit.CNOT, 0, 0, 1))
	got := s.Expectation(func(x int) float64 {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return float64(n)
	})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("E[popcount] = %g, want 1", got)
	}
}

func TestResetRestoresZeroKet(t *testing.T) {
	s := NewState(3)
	s.ApplyGate(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
	s.ApplyGate(circuit.Gate{Kind: circuit.CNOT, Qubits: []int{0, 1}})
	s.Reset()
	fresh := NewState(3)
	for i := range s.Amplitudes() {
		if s.Amplitudes()[i] != fresh.Amplitudes()[i] {
			t.Fatalf("amp[%d] = %v after Reset, want %v", i, s.Amplitudes()[i], fresh.Amplitudes()[i])
		}
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm after Reset = %g", s.Norm())
	}
}
