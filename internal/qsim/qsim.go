// Package qsim is a dense statevector simulator for small registers
// (practically up to ~20 qubits). It supplies exact gate semantics so that
// compiler passes — native-gate decomposition, swap insertion, tape
// scheduling — can be machine-checked for unitary equivalence.
//
// Qubit 0 is the least-significant bit of the basis-state index.
package qsim

//lint:deterministic-package

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
)

// MaxQubits bounds the register width; 2^24 complex128 ≈ 256 MiB.
const MaxQubits = 24

// State is a statevector over n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("qsim: qubit count %d out of range [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NewRandomState returns a Haar-ish random normalized state using the given
// source. (Gaussian components then normalize — exactly Haar for our purposes
// of distinguishing unitaries.)
func NewRandomState(n int, rng *rand.Rand) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("qsim: qubit count %d out of range [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	var norm float64
	for i := range s.amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return s
}

// Reset returns the state to |0...0> in place, reusing the amplitude
// buffer. Monte-Carlo shot loops reset one per-worker state instead of
// allocating a fresh 2^n vector per shot.
func (s *State) Reset() {
	clear(s.amp)
	s.amp[0] = 1
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitudes returns the raw amplitude slice. Callers must not mutate it.
func (s *State) Amplitudes() []complex128 { return s.amp }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(out.amp, s.amp)
	return out
}

// Norm returns the 2-norm of the state (should be 1 up to rounding).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |amp[basis]|^2.
func (s *State) Probability(basis int) float64 {
	a := s.amp[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Matrix2 is a single-qubit unitary in row-major order.
type Matrix2 [2][2]complex128

// Matrix4 is a two-qubit unitary in row-major order over basis
// |q1 q0> = |00>,|01>,|10>,|11> where q0 is the first gate operand.
type Matrix4 [4][4]complex128

// Gate matrices for every circuit.Kind.

// MatI is the identity.
func MatI() Matrix2 { return Matrix2{{1, 0}, {0, 1}} }

// MatX is the Pauli-X matrix.
func MatX() Matrix2 { return Matrix2{{0, 1}, {1, 0}} }

// MatY is the Pauli-Y matrix.
func MatY() Matrix2 { return Matrix2{{0, -1i}, {1i, 0}} }

// MatZ is the Pauli-Z matrix.
func MatZ() Matrix2 { return Matrix2{{1, 0}, {0, -1}} }

// MatH is the Hadamard matrix.
func MatH() Matrix2 {
	h := complex(1/math.Sqrt2, 0)
	return Matrix2{{h, h}, {h, -h}}
}

// MatS is the phase gate diag(1, i).
func MatS() Matrix2 { return Matrix2{{1, 0}, {0, 1i}} }

// MatSdg is the inverse phase gate diag(1, -i).
func MatSdg() Matrix2 { return Matrix2{{1, 0}, {0, -1i}} }

// MatT is diag(1, e^{iπ/4}).
func MatT() Matrix2 { return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}} }

// MatTdg is diag(1, e^{-iπ/4}).
func MatTdg() Matrix2 { return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}} }

// MatRX is exp(-iθX/2).
func MatRX(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return Matrix2{{c, s}, {s, c}}
}

// MatRY is exp(-iθY/2).
func MatRY(theta float64) Matrix2 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return Matrix2{{c, -s}, {s, c}}
}

// MatRZ is exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2}).
func MatRZ(theta float64) Matrix2 {
	return Matrix2{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

// MatXX is the Mølmer-Sørensen interaction XX(θ) = exp(−iθ X⊗X). Under this
// sign convention the paper's five-gate sequence
// Ry(π/2)c; XX(π/4); Rx(−π/2)c; Rx(−π/2)t; Ry(−π/2)c equals CNOT up to
// global phase (verified numerically in internal/decompose tests).
func MatXX(theta float64) Matrix4 {
	c := complex(math.Cos(theta), 0)
	s := complex(0, -math.Sin(theta))
	return Matrix4{
		{c, 0, 0, s},
		{0, c, s, 0},
		{0, s, c, 0},
		{s, 0, 0, c},
	}
}

// ApplyMat2 applies a single-qubit unitary to qubit q in place.
func (s *State) ApplyMat2(m Matrix2, q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("qsim: qubit %d out of range [0,%d)", q, s.n))
	}
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// ApplyMat4 applies a two-qubit unitary to qubits (q0, q1) in place, where
// the matrix basis orders q0 as the low bit.
func (s *State) ApplyMat4(m Matrix4, q0, q1 int) {
	if q0 == q1 {
		panic("qsim: two-qubit gate on identical qubits")
	}
	if q0 < 0 || q0 >= s.n || q1 < 0 || q1 >= s.n {
		panic(fmt.Sprintf("qsim: qubits (%d,%d) out of range [0,%d)", q0, q1, s.n))
	}
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	mask := b0 | b1
	for i := 0; i < len(s.amp); i++ {
		if i&mask != 0 {
			continue
		}
		i00 := i
		i01 := i | b0
		i10 := i | b1
		i11 := i | mask
		a00, a01, a10, a11 := s.amp[i00], s.amp[i01], s.amp[i10], s.amp[i11]
		s.amp[i00] = m[0][0]*a00 + m[0][1]*a01 + m[0][2]*a10 + m[0][3]*a11
		s.amp[i01] = m[1][0]*a00 + m[1][1]*a01 + m[1][2]*a10 + m[1][3]*a11
		s.amp[i10] = m[2][0]*a00 + m[2][1]*a01 + m[2][2]*a10 + m[2][3]*a11
		s.amp[i11] = m[3][0]*a00 + m[3][1]*a01 + m[3][2]*a10 + m[3][3]*a11
	}
}

// ApplyGate applies one circuit gate. Measure markers are ignored (the
// simulator is used for unitary equivalence checks, not sampling).
func (s *State) ApplyGate(g circuit.Gate) {
	switch g.Kind {
	case circuit.I:
	case circuit.X:
		s.ApplyMat2(MatX(), g.Qubits[0])
	case circuit.Y:
		s.ApplyMat2(MatY(), g.Qubits[0])
	case circuit.Z:
		s.ApplyMat2(MatZ(), g.Qubits[0])
	case circuit.H:
		s.ApplyMat2(MatH(), g.Qubits[0])
	case circuit.S:
		s.ApplyMat2(MatS(), g.Qubits[0])
	case circuit.Sdg:
		s.ApplyMat2(MatSdg(), g.Qubits[0])
	case circuit.T:
		s.ApplyMat2(MatT(), g.Qubits[0])
	case circuit.Tdg:
		s.ApplyMat2(MatTdg(), g.Qubits[0])
	case circuit.RX:
		s.ApplyMat2(MatRX(g.Theta), g.Qubits[0])
	case circuit.RY:
		s.ApplyMat2(MatRY(g.Theta), g.Qubits[0])
	case circuit.RZ:
		s.ApplyMat2(MatRZ(g.Theta), g.Qubits[0])
	case circuit.CNOT:
		s.applyCNOT(g.Qubits[0], g.Qubits[1])
	case circuit.CZ:
		s.applyCZ(g.Qubits[0], g.Qubits[1])
	case circuit.CP:
		s.applyCP(g.Theta, g.Qubits[0], g.Qubits[1])
	case circuit.SWAP:
		s.applySWAP(g.Qubits[0], g.Qubits[1])
	case circuit.XX:
		s.ApplyMat4(MatXX(g.Theta), g.Qubits[0], g.Qubits[1])
	case circuit.CCX:
		s.applyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
	case circuit.Measure:
		// no-op for unitary checks
	default:
		panic(fmt.Sprintf("qsim: unsupported gate kind %v", g.Kind))
	}
}

func (s *State) applyCNOT(ctl, tgt int) {
	cb := 1 << uint(ctl)
	tb := 1 << uint(tgt)
	for i := range s.amp {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

func (s *State) applyCZ(a, b int) {
	ab := 1<<uint(a) | 1<<uint(b)
	for i := range s.amp {
		if i&ab == ab {
			s.amp[i] = -s.amp[i]
		}
	}
}

func (s *State) applyCP(theta float64, a, b int) {
	ab := 1<<uint(a) | 1<<uint(b)
	ph := cmplx.Exp(complex(0, theta))
	for i := range s.amp {
		if i&ab == ab {
			s.amp[i] *= ph
		}
	}
}

func (s *State) applySWAP(a, b int) {
	ab0 := 1 << uint(a)
	ab1 := 1 << uint(b)
	for i := range s.amp {
		if i&ab0 != 0 && i&ab1 == 0 {
			j := i&^ab0 | ab1
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

func (s *State) applyCCX(c0, c1, tgt int) {
	cb := 1<<uint(c0) | 1<<uint(c1)
	tb := 1 << uint(tgt)
	for i := range s.amp {
		if i&cb == cb && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Run applies every gate of the circuit in order. The circuit width must not
// exceed the state width.
func (s *State) Run(c *circuit.Circuit) {
	if c.NumQubits() > s.n {
		panic(fmt.Sprintf("qsim: circuit width %d exceeds state width %d", c.NumQubits(), s.n))
	}
	for _, g := range c.Gates() {
		s.ApplyGate(g)
	}
}

// RunPermuted applies every gate after relabeling each gate qubit q to
// perm[q]. Used to check mapped circuits against their logical originals.
func (s *State) RunPermuted(c *circuit.Circuit, perm []int) {
	// Scratch for the relabeled operands, reused across gates: ApplyGate
	// reads Qubits during dispatch and never retains the slice. Gate arity
	// is at most 3 (CCX).
	var buf [3]int
	for _, g := range c.Gates() {
		qs := buf[:len(g.Qubits)]
		for i, q := range g.Qubits {
			qs[i] = perm[q]
		}
		s.ApplyGate(circuit.Gate{Kind: g.Kind, Qubits: qs, Theta: g.Theta})
	}
}

// FidelityWith returns |<s|t>|^2, insensitive to global phase.
func (s *State) FidelityWith(t *State) float64 {
	if len(s.amp) != len(t.amp) {
		panic("qsim: fidelity between states of different width")
	}
	var dot complex128
	for i := range s.amp {
		dot += cmplx.Conj(s.amp[i]) * t.amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// EquivalentUpToPhase reports whether two circuits implement the same unitary
// up to global phase, tested on trials random states with the given seed.
// Both circuits must have the same register width.
func EquivalentUpToPhase(a, b *circuit.Circuit, trials int, seed int64) bool {
	if a.NumQubits() != b.NumQubits() {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	// Each trial needs an independent random input and two private copies
	// to evolve; this is a verification helper, not on the shot path.
	for t := 0; t < trials; t++ {
		in := NewRandomState(a.NumQubits(), rng) //lint:allochot-exempt every trial requires a fresh independent random state
		sa := in.Clone()                         //lint:allochot-exempt each circuit evolves its own copy of the trial state
		sb := in.Clone()                         //lint:allochot-exempt each circuit evolves its own copy of the trial state
		sa.Run(a)
		sb.Run(b)
		if f := sa.FidelityWith(sb); f < 1-1e-9 {
			return false
		}
	}
	return true
}

// EquivalentUnderPermutation reports whether running b with qubit relabeling
// perm matches a up to global phase, tested on random states. This verifies
// swap-inserted circuits: after the inserted SWAPs, physical slot perm[q]
// holds logical qubit q's state only if trailing permutation is accounted
// for; callers append corrective SWAPs or compare against the output mapping.
func EquivalentUnderPermutation(a, b *circuit.Circuit, perm []int, trials int, seed int64) bool {
	n := a.NumQubits()
	if b.NumQubits() < n {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	// Same shape as EquivalentUpToPhase: per-trial allocation is the point.
	for t := 0; t < trials; t++ {
		in := NewRandomState(b.NumQubits(), rng) //lint:allochot-exempt every trial requires a fresh independent random state
		sa := in.Clone()                         //lint:allochot-exempt each circuit evolves its own copy of the trial state
		sb := in.Clone()                         //lint:allochot-exempt each circuit evolves its own copy of the trial state
		sa.RunPermuted(a, perm)
		sb.Run(b)
		if f := sa.FidelityWith(sb); f < 1-1e-9 {
			return false
		}
	}
	return true
}

// Sample draws one computational-basis outcome from the state's Born
// distribution using the given source. The state is not collapsed.
func (s *State) Sample(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return i
		}
	}
	// Rounding left r just above the total mass; return the last state.
	return len(s.amp) - 1
}

// SampleCounts draws shots outcomes and returns a histogram keyed by basis
// index. Deterministic for a given seed.
func (s *State) SampleCounts(shots int, seed int64) map[int]int {
	if shots < 0 {
		panic(fmt.Sprintf("qsim: negative shot count %d", shots))
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int]int)
	for i := 0; i < shots; i++ {
		counts[s.Sample(rng)]++
	}
	return counts
}

// Expectation returns the expected value of a classical function f over the
// Born distribution: Σ_x |amp[x]|² f(x). Useful for variational objectives
// such as MaxCut cut sizes.
func (s *State) Expectation(f func(basis int) float64) float64 {
	var sum float64
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			sum += p * f(i)
		}
	}
	return sum
}
