// Package optimize implements peephole circuit optimizations for the LinQ
// pipeline: merging adjacent rotations about the same axis, cancelling
// adjacent self-inverse gate pairs, and dropping identity rotations. Every
// rewrite preserves the circuit unitary exactly (up to global phase), which
// the package tests verify against the statevector simulator.
//
// On the TILT native set these rewrites matter doubly: each removed
// two-qubit gate eliminates an Eq. 4 error contribution, and shorter
// circuits schedule into fewer tape moves.
package optimize

import (
	"math"

	"repro/internal/circuit"
)

// angleEps is the threshold below which a rotation angle (mod 2π) is
// considered the identity. Rotations by exactly 2π flip global phase only.
const angleEps = 1e-12

// Stats reports what one optimization pass removed.
type Stats struct {
	MergedRotations int // pairs of same-axis rotations fused
	CancelledPairs  int // adjacent self-inverse pairs removed
	DroppedIdentity int // zero-angle rotations and explicit identities
}

// Total returns the number of gates eliminated.
func (s Stats) Total() int {
	// Each merged pair removes one gate; each cancelled pair two.
	return s.MergedRotations + 2*s.CancelledPairs + s.DroppedIdentity
}

// Run applies the peephole passes to a fixpoint and returns the optimized
// circuit plus cumulative statistics. The input circuit is not modified.
func Run(c *circuit.Circuit) (*circuit.Circuit, Stats) {
	cur := c.Clone()
	var total Stats
	for {
		next, stats := pass(cur)
		total.MergedRotations += stats.MergedRotations
		total.CancelledPairs += stats.CancelledPairs
		total.DroppedIdentity += stats.DroppedIdentity
		if stats.Total() == 0 {
			return next, total
		}
		cur = next
	}
}

// pass performs one left-to-right sweep. It maintains, per qubit, the index
// of the last emitted gate touching it; a candidate gate can interact with
// that gate iff it is the immediately preceding gate on every operand
// (adjacency in the dependency DAG, not merely in the gate list).
func pass(c *circuit.Circuit) (*circuit.Circuit, Stats) {
	var stats Stats
	gates := make([]circuit.Gate, 0, c.Len())
	last := make([]int, c.NumQubits()) // last emitted index per qubit
	for i := range last {
		last[i] = -1
	}

	emit := func(g circuit.Gate) {
		gates = append(gates, g)
		for _, q := range g.Qubits {
			last[q] = len(gates) - 1
		}
	}
	// remove deletes the gate at idx — the last gate on each of its own
	// qubits, though gates on other qubits may follow it — and repairs the
	// per-qubit indices.
	remove := func(idx int) {
		g := gates[idx]
		gates = append(gates[:idx], gates[idx+1:]...)
		for q := range last {
			if last[q] > idx {
				last[q]--
			}
		}
		for _, q := range g.Qubits {
			last[q] = -1
			for j := idx - 1; j >= 0; j-- {
				if touches(gates[j], q) {
					last[q] = j
					break
				}
			}
		}
	}

	for _, g := range c.Gates() {
		// Drop identities outright.
		if g.Kind == circuit.I {
			stats.DroppedIdentity++
			continue
		}
		if isRotation(g.Kind) && identityAngle(g.Theta) {
			stats.DroppedIdentity++
			continue
		}

		prev := adjacentPredecessor(gates, last, g)
		if prev >= 0 {
			pg := gates[prev]
			// Same-axis rotation merging.
			if isRotation(g.Kind) && pg.Kind == g.Kind && pg.Qubits[0] == g.Qubits[0] {
				merged := normalizeAngle(pg.Theta + g.Theta)
				remove(prev)
				stats.MergedRotations++
				if identityAngle(merged) {
					stats.DroppedIdentity++
					continue
				}
				emit(circuit.Gate{Kind: g.Kind, Qubits: g.Qubits, Theta: merged})
				continue
			}
			// Self-inverse pair cancellation.
			if cancels(pg, g) {
				remove(prev)
				stats.CancelledPairs++
				continue
			}
		}
		emit(g)
	}

	out := circuit.New(c.NumQubits())
	for _, g := range gates {
		out.MustAdd(g.Kind, g.Theta, g.Qubits...)
	}
	return out, stats
}

// adjacentPredecessor returns the index of the gate immediately preceding g
// on all of g's qubits, or -1 if g's operands last met different gates (or
// none), or if the predecessor touches a different qubit set.
func adjacentPredecessor(gates []circuit.Gate, last []int, g circuit.Gate) int {
	prev := last[g.Qubits[0]]
	if prev < 0 {
		return -1
	}
	for _, q := range g.Qubits[1:] {
		if last[q] != prev {
			return -1
		}
	}
	// The predecessor must also touch exactly the same qubit set, or a
	// cancellation/merge would illegally commute through other qubits.
	if len(gates[prev].Qubits) != len(g.Qubits) {
		return -1
	}
	return prev
}

func touches(g circuit.Gate, q int) bool {
	for _, qq := range g.Qubits {
		if qq == q {
			return true
		}
	}
	return false
}

func isRotation(k circuit.Kind) bool {
	switch k {
	case circuit.RX, circuit.RY, circuit.RZ, circuit.XX, circuit.CP:
		return true
	}
	return false
}

// identityAngle reports whether a rotation by theta is the identity up to
// global phase. Single-qubit rotations and XX have period 2π up to phase;
// CP has period 2π exactly.
func identityAngle(theta float64) bool {
	m := math.Mod(math.Abs(theta), 2*math.Pi)
	return m < angleEps || 2*math.Pi-m < angleEps
}

// normalizeAngle wraps an angle into (−2π, 2π) to keep merged angles tidy.
func normalizeAngle(theta float64) float64 {
	return math.Mod(theta, 2*math.Pi)
}

// cancels reports whether two adjacent gates on identical operand lists
// compose to the identity (up to global phase).
func cancels(a, b circuit.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	switch {
	// Symmetric self-inverse two-qubit gates: operand order irrelevant.
	case a.Kind == circuit.CZ && b.Kind == circuit.CZ,
		a.Kind == circuit.SWAP && b.Kind == circuit.SWAP:
		return sameSet(a.Qubits, b.Qubits)
	// Directional self-inverse gates: operands must match exactly.
	case a.Kind == circuit.CNOT && b.Kind == circuit.CNOT,
		a.Kind == circuit.CCX && b.Kind == circuit.CCX:
		return sameSeq(a.Qubits, b.Qubits)
	// Single-qubit involutions.
	case a.Qubits[0] == b.Qubits[0] && len(a.Qubits) == 1:
		switch {
		case a.Kind == circuit.X && b.Kind == circuit.X,
			a.Kind == circuit.Y && b.Kind == circuit.Y,
			a.Kind == circuit.Z && b.Kind == circuit.Z,
			a.Kind == circuit.H && b.Kind == circuit.H:
			return true
		case a.Kind == circuit.S && b.Kind == circuit.Sdg,
			a.Kind == circuit.Sdg && b.Kind == circuit.S,
			a.Kind == circuit.T && b.Kind == circuit.Tdg,
			a.Kind == circuit.Tdg && b.Kind == circuit.T:
			return true
		}
	}
	return false
}

func sameSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	switch len(a) {
	case 1:
		return a[0] == b[0]
	case 2:
		return (a[0] == b[0] && a[1] == b[1]) || (a[0] == b[1] && a[1] == b[0])
	}
	return sameSeq(a, b)
}
