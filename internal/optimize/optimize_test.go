package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/qsim"
	"repro/internal/workloads"
)

func TestMergeAdjacentRotations(t *testing.T) {
	c := circuit.New(1)
	c.ApplyRZ(0.3, 0)
	c.ApplyRZ(0.4, 0)
	out, stats := Run(c)
	if out.Len() != 1 {
		t.Fatalf("gates = %d, want 1", out.Len())
	}
	if got := out.Gate(0).Theta; math.Abs(got-0.7) > 1e-12 {
		t.Errorf("merged theta = %g, want 0.7", got)
	}
	if stats.MergedRotations != 1 {
		t.Errorf("MergedRotations = %d, want 1", stats.MergedRotations)
	}
	if !qsim.EquivalentUpToPhase(c, out, 3, 1) {
		t.Error("merge changed the unitary")
	}
}

func TestMergeToIdentityDropsBoth(t *testing.T) {
	c := circuit.New(1)
	c.ApplyRX(1.1, 0)
	c.ApplyRX(-1.1, 0)
	out, stats := Run(c)
	if out.Len() != 0 {
		t.Fatalf("gates = %d, want 0", out.Len())
	}
	if stats.Total() != 2 {
		t.Errorf("Total = %d, want 2", stats.Total())
	}
}

func TestCancelSelfInversePairs(t *testing.T) {
	c := circuit.New(3)
	c.ApplyH(0)
	c.ApplyH(0)
	c.ApplyCNOT(0, 1)
	c.ApplyCNOT(0, 1)
	c.ApplyCZ(1, 2)
	c.ApplyCZ(2, 1) // symmetric: still cancels
	c.ApplyS(0)
	c.ApplySdg(0)
	c.ApplyCCX(0, 1, 2)
	c.ApplyCCX(0, 1, 2)
	out, stats := Run(c)
	if out.Len() != 0 {
		t.Fatalf("gates = %d, want 0:\n%s", out.Len(), out)
	}
	if stats.CancelledPairs != 5 {
		t.Errorf("CancelledPairs = %d, want 5", stats.CancelledPairs)
	}
}

func TestReversedCNOTDoesNotCancel(t *testing.T) {
	c := circuit.New(2)
	c.ApplyCNOT(0, 1)
	c.ApplyCNOT(1, 0)
	out, _ := Run(c)
	if out.Len() != 2 {
		t.Fatalf("CNOT(0,1);CNOT(1,0) must survive, got %d gates", out.Len())
	}
}

func TestInterveningGateBlocksCancellation(t *testing.T) {
	c := circuit.New(2)
	c.ApplyH(0)
	c.ApplyX(1) // touches a different qubit: H...H still adjacent on qubit 0
	c.ApplyH(0)
	out, _ := Run(c)
	if out.Len() != 1 {
		t.Fatalf("H X(other) H should fold to X, got %d gates", out.Len())
	}
	c2 := circuit.New(2)
	c2.ApplyCNOT(0, 1)
	c2.ApplyX(1) // blocks: X is between the pair on qubit 1
	c2.ApplyCNOT(0, 1)
	out2, _ := Run(c2)
	if out2.Len() != 3 {
		t.Fatalf("blocked pair must survive, got %d gates", out2.Len())
	}
	if !qsim.EquivalentUpToPhase(c2, out2, 3, 2) {
		t.Error("blocked case changed the unitary")
	}
}

func TestDropIdentityRotations(t *testing.T) {
	c := circuit.New(1)
	c.ApplyRZ(0, 0)
	c.ApplyRY(2*math.Pi, 0)
	c.MustAdd(circuit.I, 0, 0)
	c.ApplyRX(0.5, 0)
	out, stats := Run(c)
	if out.Len() != 1 || out.Gate(0).Kind != circuit.RX {
		t.Fatalf("expected only the RX to survive, got:\n%s", out)
	}
	if stats.DroppedIdentity != 3 {
		t.Errorf("DroppedIdentity = %d, want 3", stats.DroppedIdentity)
	}
}

func TestXXRotationsMerge(t *testing.T) {
	c := circuit.New(2)
	c.ApplyXX(math.Pi/8, 0, 1)
	c.ApplyXX(math.Pi/8, 0, 1)
	out, _ := Run(c)
	if out.Len() != 1 {
		t.Fatalf("XX merge failed: %d gates", out.Len())
	}
	if got := out.Gate(0).Theta; math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("merged XX theta = %g", got)
	}
	if !qsim.EquivalentUpToPhase(c, out, 3, 3) {
		t.Error("XX merge changed the unitary")
	}
}

func TestFixpointCascade(t *testing.T) {
	// X H H X: the inner H pair cancels, exposing the X pair.
	c := circuit.New(1)
	c.ApplyX(0)
	c.ApplyH(0)
	c.ApplyH(0)
	c.ApplyX(0)
	out, stats := Run(c)
	if out.Len() != 0 {
		t.Fatalf("cascade failed: %d gates remain", out.Len())
	}
	if stats.CancelledPairs != 2 {
		t.Errorf("CancelledPairs = %d, want 2", stats.CancelledPairs)
	}
}

func TestInputNotMutated(t *testing.T) {
	c := circuit.New(1)
	c.ApplyH(0)
	c.ApplyH(0)
	Run(c)
	if c.Len() != 2 {
		t.Error("optimizer mutated its input")
	}
}

func TestNativeDecompositionShrinks(t *testing.T) {
	// The paper's CNOT lowering produces adjacent rotations at CNOT
	// boundaries; on QFT the optimizer should reclaim a measurable slice.
	bm := workloads.QFTN(10)
	nat := decompose.ToNative(bm.Circuit)
	out, stats := Run(nat)
	if out.Len() >= nat.Len() {
		t.Fatalf("no shrink: %d -> %d", nat.Len(), out.Len())
	}
	if stats.Total() == 0 {
		t.Error("stats report no eliminations despite shrink")
	}
	if out.TwoQubitCount() > nat.TwoQubitCount() {
		t.Error("two-qubit count grew")
	}
	if !qsim.EquivalentUpToPhase(nat, out, 2, 4) {
		t.Error("optimization changed the QFT unitary")
	}
}

func TestPropertyOptimizerPreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		c := circuit.New(n)
		kinds := []circuit.Kind{
			circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.Sdg,
			circuit.T, circuit.Tdg, circuit.RX, circuit.RY, circuit.RZ,
			circuit.CNOT, circuit.CZ, circuit.SWAP, circuit.XX, circuit.CP,
		}
		for i := 0; i < 25; i++ {
			k := kinds[rng.Intn(len(kinds))]
			qs := rng.Perm(n)[:k.Arity()]
			theta := 0.0
			if k.Parameterized() {
				// Bias toward repeats and inverses to exercise rewrites.
				switch rng.Intn(3) {
				case 0:
					theta = math.Pi / 4
				case 1:
					theta = -math.Pi / 4
				default:
					theta = rng.Float64() * 2 * math.Pi
				}
			}
			g, err := circuit.NewGate(k, theta, qs...)
			if err != nil {
				return false
			}
			if err := c.Add(g); err != nil {
				return false
			}
		}
		out, _ := Run(c)
		if out.Len() > c.Len() {
			return false
		}
		return qsim.EquivalentUpToPhase(c, out, 2, seed^0x9e37)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
