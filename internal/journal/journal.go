// Package journal is the write-ahead job journal behind linqd's durability
// story: an append-only, length-prefixed, CRC-checksummed record log that
// internal/jobs writes every job state transition into, so a daemon killed
// mid-load can replay the log on restart and pick up exactly where it was —
// queued jobs re-queue, in-flight jobs re-run, terminal results survive.
//
// On disk a journal is a directory of segment files (linq-00000001.wal,
// linq-00000002.wal, ...). Each record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// where the payload is the JSON encoding of a Record. Circuits and results
// inside records reuse the lossless Circuit.MarshalJSON / Result JSON wire
// forms, which are round-trip-tested and fuzz-covered elsewhere.
//
// Appends go to the active segment and are fsynced by default; when the
// active segment outgrows the configured size it is sealed and a new one
// started. Sealed segments whose every job has reached a terminal state —
// and whose loss cannot resurrect a job (the terminal record either lives
// in a later segment or the whole job is contained in the sealed one) —
// are deleted at rotation time (compaction).
//
// Replay tolerates a torn tail: a record cut short by a crash (or any
// frame whose checksum does not match) truncates the segment at the last
// intact record instead of failing, and a checksummed frame whose payload
// no longer parses is skipped. Replay never misparses garbage into a job.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Op is the record type: one per job state transition.
type Op string

// The journal record vocabulary. Submitted carries the full job (circuit
// included); Started marks the execution handoff; Finalized and Cancelled
// are terminal and self-contained (they repeat the job's identity fields),
// so a terminal snapshot survives even after the segment holding its
// Submitted record is compacted away.
const (
	OpSubmitted Op = "submitted"
	OpStarted   Op = "started"
	OpFinalized Op = "finalized"
	OpCancelled Op = "cancelled"
)

// known reports whether the op belongs to the journal vocabulary.
func (o Op) known() bool {
	switch o {
	case OpSubmitted, OpStarted, OpFinalized, OpCancelled:
		return true
	}
	return false
}

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool { return o == OpFinalized || o == OpCancelled }

// Record is one journal entry. Which fields are meaningful depends on Op:
// Submitted fills the identity fields plus Circuit; Started needs only ID;
// Finalized/Cancelled repeat the identity fields and add State, Error, and
// (for done jobs) Result.
type Record struct {
	Op       Op     `json:"op"`
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Name     string `json:"name,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Deduped records that the submission attached to an in-flight
	// identical circuit rather than queueing its own execution.
	Deduped bool `json:"deduped,omitempty"`
	// Submitted/Deadline are the job's submission time and TTL deadline
	// (zero deadline = no TTL).
	Submitted time.Time `json:"submitted,omitzero"`
	Deadline  time.Time `json:"deadline,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Circuit is the Circuit.MarshalJSON wire form (Submitted records).
	Circuit json.RawMessage `json:"circuit,omitempty"`
	// State/Error/Result describe the terminal outcome (Finalized and
	// Cancelled records). Result is the Result JSON wire form, preserved
	// byte for byte so replayed results stay identical to what was served
	// before the crash.
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Framing constants.
const (
	headerBytes = 8 // 4-byte length + 4-byte CRC-32C
	// maxRecordBytes rejects absurd frame lengths during replay, so a
	// corrupt length field cannot make the reader allocate gigabytes. It
	// comfortably exceeds any real record (bounded by linqd's HTTP body
	// cap plus result overhead).
	maxRecordBytes = 64 << 20
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors.
var (
	// ErrClosed: the journal was closed; appends are refused.
	ErrClosed = errors.New("journal: closed")
	// ErrReplayed: Replay was called more than once for one Open.
	ErrReplayed = errors.New("journal: already replayed")
)

// Option configures a Journal.
type Option func(*Journal)

// WithSegmentBytes sets the rotation threshold: once the active segment
// exceeds n bytes the next append seals it and starts a fresh segment
// (default 4 MiB). Smaller segments compact sooner; tests use tiny ones.
func WithSegmentBytes(n int64) Option {
	return func(j *Journal) {
		if n > 0 {
			j.segBytes = n
		}
	}
}

// WithoutSync disables the per-append fsync. Appends then ride the OS page
// cache: much faster, but records written in the seconds before a hard
// crash may be lost (they still replay cleanly as a torn tail). Meant for
// tests and throwaway deployments.
func WithoutSync() Option {
	return func(j *Journal) { j.noSync = true }
}

// WithMetrics instruments the journal against the registry: append, fsync,
// and replay counters, torn-tail truncations, and segment/byte gauges.
func WithMetrics(r *metrics.Registry) Option {
	return func(j *Journal) { j.mx = newInstruments(r) }
}

// instruments holds the journal's pre-resolved metric handles.
type instruments struct {
	appends   *metrics.CounterVec // linq_journal_appends_total{op}
	fsyncs    *metrics.Counter    // linq_journal_fsyncs_total
	replayed  *metrics.CounterVec // linq_journal_replayed_total{op}
	truncated *metrics.Counter    // linq_journal_torn_tail_truncated_total
	skipped   *metrics.Counter    // linq_journal_records_skipped_total
	compacted *metrics.Counter    // linq_journal_segments_compacted_total
	segments  *metrics.Gauge      // linq_journal_segments
	bytes     *metrics.Gauge      // linq_journal_active_segment_bytes
}

func newInstruments(r *metrics.Registry) *instruments {
	return &instruments{
		appends: r.CounterVec("linq_journal_appends_total",
			"Records appended to the write-ahead job journal, by record op.", "op"),
		fsyncs: r.Counter("linq_journal_fsyncs_total",
			"fsync calls on the active journal segment."),
		replayed: r.CounterVec("linq_journal_replayed_total",
			"Records recovered during journal replay, by record op.", "op"),
		truncated: r.Counter("linq_journal_torn_tail_truncated_total",
			"Torn or corrupt journal tails truncated during replay."),
		skipped: r.Counter("linq_journal_records_skipped_total",
			"Intact journal frames skipped because their payload did not parse."),
		compacted: r.Counter("linq_journal_segments_compacted_total",
			"Fully-terminal journal segments deleted by compaction."),
		segments: r.Gauge("linq_journal_segments",
			"Journal segment files currently on disk."),
		bytes: r.Gauge("linq_journal_active_segment_bytes",
			"Size of the active journal segment."),
	}
}

// jobSpan tracks where one job's records live, for compaction safety.
type jobSpan struct {
	firstSeg int // segment of the first record mentioning the job
	termSeg  int // segment of the terminal record, 0 while live
}

// Journal is an open write-ahead journal. Create one with Open; all
// methods are safe for concurrent use.
type Journal struct {
	dir      string
	segBytes int64
	noSync   bool
	mx       *instruments

	mu     sync.Mutex
	f      *os.File
	seq    int   // active segment sequence number
	size   int64 // active segment size in bytes
	closed bool

	// replayable holds the records recovered by Open until Replay drains
	// them (nil afterwards, and for fresh journals).
	replayable []Record
	replayed   bool

	// spans and segIDs drive compaction: which segments mention which
	// jobs, and where each job's records start and end.
	spans  map[string]*jobSpan
	segIDs map[int]map[string]bool
	buf    []byte // append scratch, reused under mu
}

// Open opens (or creates) the journal directory, scans the existing
// segments — truncating any torn tail in place — and starts a fresh active
// segment. The recovered records are held for one Replay call.
func Open(dir string, opts ...Option) (*Journal, error) {
	j := &Journal{
		dir:      dir,
		segBytes: 4 << 20,
		spans:    make(map[string]*jobSpan),
		segIDs:   make(map[int]map[string]bool),
	}
	for _, o := range opts {
		o(j)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	last := 0
	for _, seq := range seqs {
		recs, err := j.scanSegment(seq)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			j.trackLocked(seq, rec)
		}
		j.replayable = append(j.replayable, recs...)
		last = seq
	}
	j.seq = last + 1
	f, err := os.OpenFile(j.segmentPath(j.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.segIDs[j.seq] = make(map[string]bool)
	if j.mx != nil {
		j.mx.segments.Set(float64(len(seqs) + 1))
		j.mx.bytes.Set(0)
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Replay streams every record recovered by Open, oldest first, and frees
// the recovery buffer. It must be called at most once, before the journal
// is handed to writers; a fresh journal replays zero records. If fn
// returns an error, Replay stops and returns it.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	if j.replayed {
		j.mu.Unlock()
		return ErrReplayed
	}
	j.replayed = true
	recs := j.replayable
	j.replayable = nil
	j.mu.Unlock()
	for _, rec := range recs {
		if j.mx != nil {
			j.mx.replayed.With(string(rec.Op)).Inc()
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Append durably writes one record: frame, write, fsync (unless disabled),
// rotating and compacting segments as needed. It returns once the record
// is on disk, which is what makes a 202 Accepted a promise the daemon can
// keep across kill -9.
func (j *Journal) Append(rec Record) error {
	if !rec.Op.known() {
		return fmt.Errorf("journal: unknown op %q", rec.Op)
	}
	if rec.ID == "" {
		return fmt.Errorf("journal: record without a job ID")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.buf = j.buf[:0]
	j.buf = binary.LittleEndian.AppendUint32(j.buf, uint32(len(payload)))
	j.buf = binary.LittleEndian.AppendUint32(j.buf, crc32.Checksum(payload, castagnoli))
	j.buf = append(j.buf, payload...)
	if _, err := j.f.Write(j.buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(j.buf))
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		if j.mx != nil {
			j.mx.fsyncs.Inc()
		}
	}
	j.trackLocked(j.seq, rec)
	if j.mx != nil {
		j.mx.appends.With(string(rec.Op)).Inc() //lint:lockorder-exempt Journal.mu is the outer lock; metrics family.mu is a leaf never held across journal calls
		j.mx.bytes.Set(float64(j.size))
	}
	if j.size >= j.segBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync forces an fsync of the active segment (a no-op amortizer for
// WithoutSync journals that still want occasional durability points).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if j.mx != nil {
		j.mx.fsyncs.Inc()
	}
	return nil
}

// Checkpoint rewrites the journal as the given records: they are appended
// to the active segment (fsynced once at the end), then every previous
// segment is deleted. The manager calls this right after recovery with the
// surviving state — live jobs as Submitted records, retained terminal
// snapshots as Finalized/Cancelled records — so the journal shrinks back
// to its live set on every restart instead of replaying history forever.
// A crash mid-checkpoint is safe: replay applies records in order, and the
// checkpoint's records restate (never contradict) the surviving state.
func (j *Journal) Checkpoint(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.buf = j.buf[:0]
	for _, rec := range recs {
		if !rec.Op.known() || rec.ID == "" {
			return fmt.Errorf("journal: checkpoint: bad record %q/%q", rec.Op, rec.ID)
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: checkpoint: %w", err)
		}
		j.buf = binary.LittleEndian.AppendUint32(j.buf, uint32(len(payload)))
		j.buf = binary.LittleEndian.AppendUint32(j.buf, crc32.Checksum(payload, castagnoli))
		j.buf = append(j.buf, payload...)
	}
	if len(j.buf) > 0 {
		if _, err := j.f.Write(j.buf); err != nil {
			return fmt.Errorf("journal: checkpoint: %w", err)
		}
		j.size += int64(len(j.buf))
	}
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		if j.mx != nil {
			j.mx.fsyncs.Inc()
		}
	}
	// The checkpoint supersedes all history: reset the tracking state to
	// the checkpointed records alone, then drop the old segments.
	j.spans = make(map[string]*jobSpan)
	j.segIDs = map[int]map[string]bool{j.seq: make(map[string]bool)}
	for _, rec := range recs {
		j.trackLocked(j.seq, rec)
		if j.mx != nil {
			j.mx.appends.With(string(rec.Op)).Inc()
		}
	}
	removed := 0
	for seq := 1; seq < j.seq; seq++ {
		path := j.segmentPath(seq)
		if err := os.Remove(path); err == nil {
			removed++
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("journal: checkpoint: %w", err)
		}
	}
	if j.mx != nil {
		if removed > 0 {
			j.mx.compacted.Add(int64(removed))
		}
		j.mx.segments.Set(1)
		j.mx.bytes.Set(float64(j.size))
	}
	return nil
}

// Close seals the journal. Further appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if !j.noSync {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Segments returns the sequence numbers of the segment files currently on
// disk, sorted ascending (tests and operators use it; the write path keeps
// its own state).
func (j *Journal) Segments() ([]int, error) {
	return listSegments(j.dir)
}

// trackLocked books one record into the compaction-tracking state.
func (j *Journal) trackLocked(seg int, rec Record) {
	ids := j.segIDs[seg]
	if ids == nil {
		ids = make(map[string]bool)
		j.segIDs[seg] = ids
	}
	ids[rec.ID] = true
	sp := j.spans[rec.ID]
	if sp == nil {
		sp = &jobSpan{firstSeg: seg}
		j.spans[rec.ID] = sp
	}
	if rec.Op.Terminal() {
		sp.termSeg = seg
	} else if sp.termSeg != 0 {
		// The job came back to life (a checkpoint restated it, or a replayed
		// queued record follows an old terminal record): it is live again.
		sp.termSeg = 0
		sp.firstSeg = seg
	}
}

// rotateLocked seals the active segment, starts the next one, and compacts
// sealed segments that can no longer matter to replay.
func (j *Journal) rotateLocked() error {
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		if j.mx != nil {
			j.mx.fsyncs.Inc()
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(j.segmentPath(j.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f = f
	j.size = 0
	j.segIDs[j.seq] = make(map[string]bool)
	j.compactLocked()
	if j.mx != nil {
		segs := 0
		for range j.segIDs {
			segs++
		}
		j.mx.segments.Set(float64(segs))
		j.mx.bytes.Set(0)
	}
	return nil
}

// compactLocked deletes sealed segments that replay can safely live
// without: every job mentioned in the segment is terminal, and losing the
// segment cannot resurrect one — either the job's terminal record lives in
// a later segment (so replay still sees it finish) or the job is wholly
// contained in this segment (so it vanishes, result and all, exactly like
// an LRU eviction from the bounded result store).
func (j *Journal) compactLocked() {
	seqs := make([]int, 0, len(j.segIDs))
	for seq := range j.segIDs {
		if seq != j.seq {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		removable := true
		for id := range j.segIDs[seq] {
			sp := j.spans[id]
			if sp == nil || sp.termSeg == 0 || !(sp.termSeg > seq || sp.firstSeg == seq) {
				removable = false
				break
			}
		}
		if !removable {
			continue
		}
		if err := os.Remove(j.segmentPath(seq)); err != nil && !errors.Is(err, os.ErrNotExist) {
			continue // try again at the next rotation
		}
		for id := range j.segIDs[seq] {
			sp := j.spans[id]
			if sp == nil {
				continue
			}
			if sp.firstSeg == seq && sp.termSeg == seq {
				delete(j.spans, id)
				continue
			}
			if sp.firstSeg == seq {
				// The job's earliest surviving records now live in a later
				// segment; advance firstSeg so that segment becomes wholly
				// responsible for the job and can itself compact once the
				// job has no earlier history left. Without this, a segment
				// holding a terminal record whose submission was compacted
				// away is pinned forever.
				sp.firstSeg = j.seq
				for s, ids := range j.segIDs {
					if s != seq && s < sp.firstSeg && ids[id] {
						sp.firstSeg = s
					}
				}
			}
		}
		delete(j.segIDs, seq)
		if j.mx != nil {
			j.mx.compacted.Inc()
		}
	}
}

// segmentPath renders the file name of segment seq.
func (j *Journal) segmentPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("linq-%08d.wal", seq))
}

// listSegments returns the segment sequence numbers present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if n, err := fmt.Sscanf(e.Name(), "linq-%d.wal", &seq); n == 1 && err == nil && seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// scanSegment reads every intact record of segment seq and truncates the
// file at the first torn or corrupt frame, so the next writer (and the
// next replay) sees a clean tail.
func (j *Journal) scanSegment(seq int) ([]Record, error) {
	path := j.segmentPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, good, skipped := ScanRecords(data)
	if good < int64(len(data)) {
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		if j.mx != nil {
			j.mx.truncated.Inc()
		}
	}
	if skipped > 0 && j.mx != nil {
		j.mx.skipped.Add(int64(skipped))
	}
	return recs, nil
}

// ScanRecords parses one segment's raw bytes. It returns the intact
// records, the byte offset of the last intact frame (everything past it is
// a torn or corrupt tail the caller should truncate), and how many intact
// frames were skipped because their payload was not a valid record. It
// never panics, whatever the input — the FuzzJournalReplay target holds it
// to that.
func ScanRecords(data []byte) (recs []Record, goodBytes int64, skipped int) {
	off := 0
	for {
		if len(data)-off < headerBytes {
			return recs, int64(off), skipped // clean end or torn header
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length <= 0 || length > maxRecordBytes || len(data)-off-headerBytes < length {
			return recs, int64(off), skipped // corrupt length or torn payload
		}
		payload := data[off+headerBytes : off+headerBytes+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, int64(off), skipped // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || !rec.Op.known() || rec.ID == "" {
			// The frame is intact (the writer's checksum matches) but the
			// payload is not a record we understand: skip it rather than
			// guessing, and keep scanning — framing is self-synchronizing.
			skipped++
		} else {
			recs = append(recs, rec)
		}
		off += headerBytes + length
	}
}

// ReadSegment replays one segment file without opening a Journal — the
// offline inspection path (and the golden-file tests').
func ReadSegment(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, _, _ := ScanRecords(data)
	return recs, nil
}

// AppendTo frames one record onto w — the test helper writers (golden file
// and corpus generators) share the production framing.
func AppendTo(w io.Writer, rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}
