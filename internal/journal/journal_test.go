package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// -update regenerates the golden segment files under testdata.
var update = flag.Bool("update", false, "rewrite golden journal segments")

// t0 is a fixed submission timestamp: journal tests compare records across
// a write/replay round trip, so wall-clock jitter has no place in them.
var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func rec(op Op, id string, extra func(*Record)) Record {
	r := Record{Op: op, ID: id, Backend: "TILT", Submitted: t0}
	if extra != nil {
		extra(&r)
	}
	return r
}

// replayAll reopens dir and drains its replay stream.
func replayAll(t *testing.T, dir string, opts ...Option) []Record {
	t.Helper()
	j, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var got []Record
	if err := j.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

// sameRecords compares via the JSON wire form, which is what actually
// round-trips through the log (time.Time equality is too strict across
// marshal boundaries, and RawMessage fields compare byte for byte).
func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d\ngot: %+v", len(got), len(want), got)
	}
	for i := range want {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if !bytes.Equal(g, w) {
			t.Errorf("record %d:\n got %s\nwant %s", i, g, w)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		rec(OpSubmitted, "j-00000001", func(r *Record) {
			r.Tenant = "alice"
			r.Name = "ghz"
			r.Priority = 2
			r.Circuit = json.RawMessage(`{"qubits":2,"gates":[{"kind":"h","qubits":[0]}]}`)
		}),
		rec(OpStarted, "j-00000001", nil),
		rec(OpFinalized, "j-00000001", func(r *Record) {
			r.State = "done"
			r.Finished = t0.Add(time.Second)
			r.Result = json.RawMessage(`{"backend":"TILT","fidelity":0.99}`)
		}),
		rec(OpSubmitted, "j-00000002", func(r *Record) {
			r.Deadline = t0.Add(time.Hour)
		}),
		rec(OpCancelled, "j-00000002", func(r *Record) {
			r.State = "cancelled"
			r.Error = "context canceled"
		}),
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, replayAll(t, dir), recs)
}

func TestReplayTwiceRefused(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Replay(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(func(Record) error { return nil }); err != ErrReplayed {
		t.Fatalf("second Replay: got %v, want ErrReplayed", err)
	}
}

func TestAppendRejectsBadRecords(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Op: "bogus", ID: "j-1"}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := j.Append(Record{Op: OpSubmitted}); err == nil {
		t.Error("record without ID accepted")
	}
	j.Close()
	if err := j.Append(rec(OpSubmitted, "j-1", nil)); err != ErrClosed {
		t.Errorf("append after close: got %v, want ErrClosed", err)
	}
}

// TestTornTailTruncated crashes mid-write by hand: a half-written frame at
// the tail must be truncated in place at Open, and replay must return every
// record before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := []Record{
		rec(OpSubmitted, "j-00000001", nil),
		rec(OpStarted, "j-00000001", nil),
	}
	for _, r := range keep {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a full frame header claiming more payload than exists.
	path := filepath.Join(dir, "linq-00000001.wal")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{}, before...)
	torn = binary.LittleEndian.AppendUint32(torn, 4096)
	torn = binary.LittleEndian.AppendUint32(torn, 0xdeadbeef)
	torn = append(torn, []byte(`{"op":"submitted","id":"j-partial`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	sameRecords(t, replayAll(t, dir), keep)
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, before) {
		t.Errorf("torn tail not truncated back: %d bytes, want %d", len(after), len(before))
	}
}

// TestCorruptFrameSkipped: an intact frame (checksum matches what was
// written) whose payload is not a record must be skipped without desyncing
// the reader — the records after it still replay.
func TestCorruptFrameSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "linq-00000001.wal")
	var buf bytes.Buffer
	first := rec(OpSubmitted, "j-00000001", nil)
	if err := AppendTo(&buf, first); err != nil {
		t.Fatal(err)
	}
	// A well-framed payload that is valid JSON but not a known record.
	bogus := []byte(`{"op":"sideways","id":"x"}`)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(bogus)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(bogus, castagnoli))
	buf.Write(hdr[:])
	buf.Write(bogus)
	last := rec(OpFinalized, "j-00000001", func(r *Record) { r.State = "failed"; r.Error = "x" })
	if err := AppendTo(&buf, last); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, good, skipped := ScanRecords(buf.Bytes())
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if good != int64(buf.Len()) {
		t.Errorf("goodBytes = %d, want %d (no truncation for skipped frames)", good, buf.Len())
	}
	sameRecords(t, recs, []Record{first, last})
	sameRecords(t, replayAll(t, dir), []Record{first, last})
}

// TestRotationAndCompaction: with a tiny segment size, sealed segments
// whose jobs all finished inside them are deleted; a segment holding a
// still-live job survives every rotation.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithSegmentBytes(256), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// A job that stays live the whole test: its submission pins segment 1.
	if err := j.Append(rec(OpSubmitted, "j-live", nil)); err != nil {
		t.Fatal(err)
	}
	// Churn terminal jobs through many rotations.
	for i := 0; i < 40; i++ {
		id := string(rune('a'+i%26)) + "-job"
		if err := j.Append(rec(OpSubmitted, id, nil)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec(OpFinalized, id, func(r *Record) { r.State = "done" })); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := j.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] != 1 {
		t.Fatalf("segment 1 holds a live job and must survive compaction; on disk: %v", segs)
	}
	if len(segs) > 6 {
		t.Errorf("compaction left %d segments on disk (%v); fully-terminal ones should be gone", len(segs), segs)
	}

	// Finish the pinned job, churn a little more: segment 1 is now
	// removable (terminal record lives in a later segment).
	if err := j.Append(rec(OpFinalized, "j-live", func(r *Record) { r.State = "done" })); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := string(rune('a'+i)) + "-tail"
		if err := j.Append(rec(OpSubmitted, id, nil)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec(OpFinalized, id, func(r *Record) { r.State = "done" })); err != nil {
			t.Fatal(err)
		}
	}
	segs, err = j.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 0 && segs[0] == 1 {
		t.Errorf("segment 1 still on disk after its last job finished elsewhere: %v", segs)
	}
}

func TestCheckpointShrinksJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithSegmentBytes(128), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := "j-hist" + string(rune('a'+i))
		if err := j.Append(rec(OpSubmitted, id, nil)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := Open(dir, WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Replay(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	survivors := []Record{
		rec(OpSubmitted, "j-keep", nil),
		rec(OpFinalized, "j-done", func(r *Record) {
			r.State = "done"
			r.Result = json.RawMessage(`{"fidelity":1}`)
		}),
	}
	if err := j2.Checkpoint(survivors); err != nil {
		t.Fatal(err)
	}
	segs, err := j2.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("after checkpoint: %d segments on disk (%v), want 1", len(segs), segs)
	}
	j2.Close()

	sameRecords(t, replayAll(t, dir), survivors)
}

// goldenRecords is the fixed record set behind the checked-in golden
// segments: every op, every field class (circuit payload, terminal result,
// TTL deadline, tenant identity), fixed timestamps.
func goldenRecords() []Record {
	return []Record{
		rec(OpSubmitted, "j-00000001", func(r *Record) {
			r.Tenant = "alice"
			r.Name = "bell"
			r.Priority = 1
			r.Circuit = json.RawMessage(`{"qubits":2,"gates":[{"kind":"h","qubits":[0]},{"kind":"cx","qubits":[0,1]}]}`)
		}),
		rec(OpStarted, "j-00000001", nil),
		rec(OpFinalized, "j-00000001", func(r *Record) {
			r.Tenant = "alice"
			r.Name = "bell"
			r.State = "done"
			r.Finished = t0.Add(3 * time.Second)
			r.Result = json.RawMessage(`{"backend":"TILT","fidelity":0.97,"tswap":12}`)
		}),
		rec(OpSubmitted, "j-00000002", func(r *Record) {
			r.Tenant = "bob"
			r.Deadline = t0.Add(time.Minute)
			r.Deduped = true
			r.Circuit = json.RawMessage(`{"qubits":1,"gates":[{"kind":"x","qubits":[0]}]}`)
		}),
		rec(OpCancelled, "j-00000002", func(r *Record) {
			r.Tenant = "bob"
			r.State = "cancelled"
			r.Error = "cancelled by client"
			r.Finished = t0.Add(5 * time.Second)
		}),
	}
}

// TestGoldenReplay replays checked-in segment files — one clean, one with a
// torn tail — against their expected decoded records, pinning the on-disk
// format: a framing change that breaks old journals fails here first.
// Regenerate the files with: go test ./internal/journal -run GoldenReplay -update
func TestGoldenReplay(t *testing.T) {
	want := goldenRecords()
	if *update {
		var clean bytes.Buffer
		for _, r := range want {
			if err := AppendTo(&clean, r); err != nil {
				t.Fatal(err)
			}
		}
		// The torn variant is the clean log plus a frame header whose claimed
		// payload never made it to disk — the shape a kill -9 mid-write leaves.
		torn := append([]byte{}, clean.Bytes()...)
		torn = binary.LittleEndian.AppendUint32(torn, 512)
		torn = binary.LittleEndian.AppendUint32(torn, 0x1badf00d)
		torn = append(torn, []byte(`{"op":"submitted","id":"j-lost`)...)
		if err := os.WriteFile(filepath.Join("testdata", "golden_clean.wal"), clean.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join("testdata", "golden_torn.wal"), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		// The fuzz seed corpus is the same byte shapes, checked in as
		// `go test fuzz v1` files so plain `go test` runs them too.
		corpusDir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, seed := range fuzzSeeds() {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("clean", func(t *testing.T) {
		recs, err := ReadSegment(filepath.Join("testdata", "golden_clean.wal"))
		if err != nil {
			t.Fatal(err)
		}
		sameRecords(t, recs, want)
	})
	t.Run("torn", func(t *testing.T) {
		// Same records with a torn frame appended: replay must return the
		// intact prefix and report the tear.
		data, err := os.ReadFile(filepath.Join("testdata", "golden_torn.wal"))
		if err != nil {
			t.Fatal(err)
		}
		recs, good, skipped := ScanRecords(data)
		if good >= int64(len(data)) {
			t.Fatalf("goodBytes = %d of %d: the tear went unnoticed", good, len(data))
		}
		if skipped != 0 {
			t.Errorf("skipped = %d, want 0", skipped)
		}
		sameRecords(t, recs, want)
	})
	t.Run("open-truncates", func(t *testing.T) {
		// Opening a journal over a copy of the torn segment truncates it on
		// disk and replays the same records.
		dir := t.TempDir()
		data, err := os.ReadFile(filepath.Join("testdata", "golden_torn.wal"))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "linq-00000001.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sameRecords(t, replayAll(t, dir), want)
		clean, err := os.ReadFile(filepath.Join("testdata", "golden_clean.wal"))
		if err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after, clean) {
			t.Error("truncated torn segment does not match the clean golden file")
		}
	})
}

// TestOpWellKnown pins the op vocabulary (a rename would orphan old
// journals on disk).
func TestOpWellKnown(t *testing.T) {
	want := map[Op]bool{
		OpSubmitted: false, OpStarted: false,
		OpFinalized: true, OpCancelled: true,
	}
	for op, terminal := range want {
		if !op.known() {
			t.Errorf("op %q not known", op)
		}
		if op.Terminal() != terminal {
			t.Errorf("op %q Terminal() = %v, want %v", op, op.Terminal(), terminal)
		}
	}
	if Op("done").known() {
		t.Error(`op "done" should not be known`)
	}
}

// TestSegmentsListing pins the segment naming scheme.
func TestSegmentsListing(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	segs, err := j.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segs, []int{1}) {
		t.Fatalf("fresh journal segments = %v, want [1]", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, "linq-00000001.wal")); err != nil {
		t.Fatalf("segment file name changed: %v", err)
	}
}
