// Package musiqc models the paper's §VII modular scaling proposal: TILT
// devices as the element logic units (ELUs) of a MUSIQC-style architecture
// (Monroe et al.), linked by photonic interconnects.
//
// Qubits are partitioned into contiguous blocks, one per module; each module
// is an independent TILT tape with its own laser head (compiled and scored
// by the standard LinQ pipeline). A two-qubit gate across modules consumes a
// heralded EPR pair between the modules' communication ports and executes as
// a teleported CNOT: two local port interactions plus the EPR pair's
// infidelity. Pair generation is probabilistic, so its expected latency is
// AttemptUs/SuccessProb per pair.
//
// The interesting engineering question §VII raises — when does splitting one
// long hot chain into cooler modules win despite paying for entanglement
// links — is answered by experiments.ModularStudy.
package musiqc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mapping"
	"repro/internal/noise"
	"repro/internal/swapins"
)

// Link parameterizes the photonic interconnect.
type Link struct {
	// EPRFidelity is the fidelity of one heralded entangled pair.
	EPRFidelity float64
	// AttemptUs is the duration of one pair-generation attempt.
	AttemptUs float64
	// SuccessProb is the per-attempt heralding probability.
	SuccessProb float64
	// PortOverhead is the number of extra local two-qubit gate
	// equivalents consumed per teleported gate (port entanglement and
	// correction), charged at the port gate distance.
	PortOverhead int
}

// DefaultLink returns interconnect parameters in line with the MUSIQC
// literature: high-fidelity heralded pairs at low success probability.
func DefaultLink() Link {
	return Link{EPRFidelity: 0.96, AttemptUs: 10, SuccessProb: 0.01, PortOverhead: 2}
}

// Validate rejects non-physical link parameters.
func (l Link) Validate() error {
	if l.EPRFidelity <= 0 || l.EPRFidelity > 1 {
		return fmt.Errorf("musiqc: EPRFidelity %g outside (0,1]", l.EPRFidelity)
	}
	if l.AttemptUs < 0 {
		return fmt.Errorf("musiqc: negative AttemptUs")
	}
	if l.SuccessProb <= 0 || l.SuccessProb > 1 {
		return fmt.Errorf("musiqc: SuccessProb %g outside (0,1]", l.SuccessProb)
	}
	if l.PortOverhead < 0 {
		return fmt.Errorf("musiqc: negative PortOverhead")
	}
	return nil
}

// Spec describes a modular machine: Modules TILT tapes of IonsPerModule ions
// each (the last ion of each module is its communication port), every module
// driven by a HeadSize-laser head.
type Spec struct {
	Modules       int
	IonsPerModule int
	HeadSize      int
	Link          Link
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Modules < 1 {
		return fmt.Errorf("musiqc: modules %d < 1", s.Modules)
	}
	if s.IonsPerModule < 3 {
		return fmt.Errorf("musiqc: ions per module %d < 3 (need a data pair plus a port)", s.IonsPerModule)
	}
	if s.HeadSize < 2 || s.HeadSize > s.IonsPerModule {
		return fmt.Errorf("musiqc: head size %d outside [2,%d]", s.HeadSize, s.IonsPerModule)
	}
	return s.Link.Validate()
}

// DataQubits returns the number of program-visible qubits (ports excluded).
func (s Spec) DataQubits() int { return s.Modules * (s.IonsPerModule - 1) }

// Result reports the simulated metrics of one modular execution.
type Result struct {
	SuccessRate float64
	LogSuccess  float64
	// ExecTimeUs is the slowest module's local execution plus the
	// serialized expected EPR-generation latency.
	ExecTimeUs float64
	// CrossGates is the number of teleported (inter-module) gates; each
	// consumed one EPR pair.
	CrossGates int
	// LocalMoves sums tape moves across modules.
	LocalMoves int
	// PerModuleLog holds each module's local log success.
	PerModuleLog []float64
}

// Run partitions the circuit across the modules (qubit q lives in module
// q/(IonsPerModule-1)), compiles each module's local program with the LinQ
// pipeline, and charges every cross-module gate as a teleported CNOT.
// The circuit must be at arity ≤ 2 (run internal/decompose first).
func Run(ctx context.Context, c *circuit.Circuit, spec Spec, p noise.Params) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits() > spec.DataQubits() {
		return nil, fmt.Errorf("musiqc: circuit width %d exceeds %d data qubits",
			c.NumQubits(), spec.DataQubits())
	}
	for i, g := range c.Gates() {
		if len(g.Qubits) > 2 {
			return nil, fmt.Errorf("musiqc: gate %d (%s) has arity %d; decompose first",
				i, g, len(g.Qubits))
		}
	}
	perMod := spec.IonsPerModule - 1
	moduleOf := func(q int) int { return q / perMod }
	localOf := func(q int) int { return q % perMod }
	port := spec.IonsPerModule - 1 // local index of the communication port

	// Split the program into per-module local circuits. A cross-module
	// gate becomes one port interaction in each endpoint module plus
	// PortOverhead local port gates per side, and one EPR pair.
	locals := make([]*circuit.Circuit, spec.Modules)
	for m := range locals {
		locals[m] = circuit.New(spec.IonsPerModule)
	}
	res := &Result{}
	for i, g := range c.Gates() {
		switch {
		case g.Kind == circuit.Measure:
			locals[moduleOf(g.Qubits[0])].ApplyMeasure(localOf(g.Qubits[0]))
		case !g.IsTwoQubit():
			locals[moduleOf(g.Qubits[0])].MustAdd(g.Kind, g.Theta, localOf(g.Qubits[0]))
		case moduleOf(g.Qubits[0]) == moduleOf(g.Qubits[1]):
			m := moduleOf(g.Qubits[0])
			locals[m].MustAdd(g.Kind, g.Theta, localOf(g.Qubits[0]), localOf(g.Qubits[1]))
		default:
			if len(g.Qubits) > 2 {
				return nil, fmt.Errorf("musiqc: gate %d has arity %d; decompose first", i, len(g.Qubits))
			}
			// Teleported gate: each side interacts its data qubit with
			// the local port (which holds half the EPR pair), plus the
			// configured overhead gates on the port.
			for side := 0; side < 2; side++ {
				m := moduleOf(g.Qubits[side])
				l := localOf(g.Qubits[side])
				locals[m].ApplyCNOT(l, port)
				for k := 0; k < spec.Link.PortOverhead; k++ {
					locals[m].ApplyRX(math.Pi/2, port)
				}
			}
			res.CrossGates++
		}
	}

	// Compile and score each module independently.
	logF := 0.0
	var slowest float64
	res.PerModuleLog = make([]float64, spec.Modules)
	for m, lc := range locals {
		cfg := core.Config{
			Device:    device.TILT{NumIons: spec.IonsPerModule, HeadSize: spec.HeadSize},
			Noise:     &p,
			Placement: mapping.ProgramOrderPlacement,
			Inserter:  swapins.LinQ{},
		}
		cr, sr, err := core.Run(ctx, lc, cfg)
		if err != nil {
			return nil, fmt.Errorf("musiqc: module %d: %w", m, err)
		}
		logF += sr.LogSuccess
		res.PerModuleLog[m] = sr.LogSuccess
		res.LocalMoves += cr.Moves()
		if sr.ExecTimeUs > slowest {
			slowest = sr.ExecTimeUs
		}
	}
	// Every cross gate pays the EPR pair's infidelity once.
	logF += float64(res.CrossGates) * math.Log(spec.Link.EPRFidelity)

	res.LogSuccess = logF
	res.SuccessRate = math.Exp(logF)
	res.ExecTimeUs = slowest +
		float64(res.CrossGates)*spec.Link.AttemptUs/spec.Link.SuccessProb
	return res, nil
}

// Monolithic scores the same circuit on one long TILT chain — the
// comparison point for the §VII modular-vs-monolithic study. It returns the
// log success rate.
func Monolithic(ctx context.Context, c *circuit.Circuit, ions, head int, p noise.Params) (float64, error) {
	cfg := core.Config{
		Device:    device.TILT{NumIons: ions, HeadSize: head},
		Noise:     &p,
		Placement: mapping.ProgramOrderPlacement,
		Inserter:  swapins.LinQ{},
	}
	_, sr, err := core.Run(ctx, c, cfg)
	if err != nil {
		return 0, err
	}
	return sr.LogSuccess, nil
}
