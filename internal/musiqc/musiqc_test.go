package musiqc

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/noise"
	"repro/internal/workloads"
)

func spec2x9() Spec {
	return Spec{Modules: 2, IonsPerModule: 9, HeadSize: 4, Link: DefaultLink()}
}

func TestSpecValidation(t *testing.T) {
	if err := spec2x9().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Modules: 0, IonsPerModule: 9, HeadSize: 4, Link: DefaultLink()},
		{Modules: 2, IonsPerModule: 2, HeadSize: 2, Link: DefaultLink()},
		{Modules: 2, IonsPerModule: 9, HeadSize: 1, Link: DefaultLink()},
		{Modules: 2, IonsPerModule: 9, HeadSize: 10, Link: DefaultLink()},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	l := DefaultLink()
	l.EPRFidelity = 1.5
	if err := l.Validate(); err == nil {
		t.Error("EPRFidelity > 1 validated")
	}
	l = DefaultLink()
	l.SuccessProb = 0
	if err := l.Validate(); err == nil {
		t.Error("zero success probability validated")
	}
}

func TestDataQubits(t *testing.T) {
	if got := spec2x9().DataQubits(); got != 16 {
		t.Errorf("DataQubits = %d, want 16", got)
	}
}

func TestLocalCircuitNoCrossGates(t *testing.T) {
	// All gates inside module 0: no EPR pairs, success equals a single
	// TILT module's.
	c := circuit.New(16)
	c.ApplyH(0)
	c.ApplyCNOT(0, 1)
	c.ApplyCNOT(2, 3)
	r, err := Run(context.Background(), c, spec2x9(), noise.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossGates != 0 {
		t.Errorf("CrossGates = %d, want 0", r.CrossGates)
	}
	if r.SuccessRate <= 0 || r.SuccessRate > 1 {
		t.Errorf("success = %g", r.SuccessRate)
	}
}

func TestCrossGateConsumesEPR(t *testing.T) {
	c := circuit.New(16)
	c.ApplyCNOT(0, 8) // module 0 -> module 1
	r, err := Run(context.Background(), c, spec2x9(), noise.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossGates != 1 {
		t.Fatalf("CrossGates = %d, want 1", r.CrossGates)
	}
	// Success is bounded above by the EPR fidelity.
	if r.SuccessRate > DefaultLink().EPRFidelity {
		t.Errorf("success %g exceeds EPR fidelity bound", r.SuccessRate)
	}
	// Expected latency includes the heralding wait.
	minLatency := DefaultLink().AttemptUs / DefaultLink().SuccessProb
	if r.ExecTimeUs < minLatency {
		t.Errorf("exec time %g below EPR latency %g", r.ExecTimeUs, minLatency)
	}
}

func TestMoreCrossTrafficLowersSuccess(t *testing.T) {
	mk := func(cross int) *circuit.Circuit {
		c := circuit.New(16)
		for i := 0; i < cross; i++ {
			c.ApplyCNOT(i%8, 8+i%8)
		}
		return c
	}
	p := noise.Default()
	r1, err := Run(context.Background(), mk(2), spec2x9(), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), mk(10), spec2x9(), p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LogSuccess >= r1.LogSuccess {
		t.Errorf("10 cross gates (%g) should be worse than 2 (%g)",
			r2.LogSuccess, r1.LogSuccess)
	}
}

func TestRejectsWideCircuit(t *testing.T) {
	c := circuit.New(64)
	if _, err := Run(context.Background(), c, spec2x9(), noise.Default()); err == nil {
		t.Error("circuit wider than data capacity should fail")
	}
}

func TestRejectsTernaryGate(t *testing.T) {
	c := circuit.New(16)
	c.ApplyCCX(0, 1, 8)
	if _, err := Run(context.Background(), c, spec2x9(), noise.Default()); err == nil {
		t.Error("cross-module arity-3 gate should fail (decompose first)")
	}
}

func TestPerModuleLogsSumToTotal(t *testing.T) {
	bm := workloads.QAOAN(16, 1, 3)
	nat := decompose.ToNative(bm.Circuit)
	spec := spec2x9()
	r, err := Run(context.Background(), nat, spec, noise.Default())
	if err != nil {
		t.Fatal(err)
	}
	var local float64
	for _, l := range r.PerModuleLog {
		local += l
	}
	want := local + float64(r.CrossGates)*math.Log(spec.Link.EPRFidelity)
	if math.Abs(want-r.LogSuccess) > 1e-9 {
		t.Errorf("log breakdown %g != total %g", want, r.LogSuccess)
	}
}

func TestModularVsMonolithicCrossover(t *testing.T) {
	// §VII's motivation: splitting one long hot chain into two cooler
	// modules pays off once shuttle heating dominates, but not before —
	// there is a genuine crossover, which this test pins from both sides.
	p := noise.Default()

	// Small and shallow: the photonic links cost more than they save.
	smallBm := workloads.QAOAN(48, 4, 9)
	smallNat := decompose.ToNative(smallBm.Circuit)
	monoSmall := monolithicLog(t, smallNat, 48, 8, p)
	modSmall, err := Run(context.Background(), smallNat, Spec{Modules: 2, IonsPerModule: 25, HeadSize: 8, Link: DefaultLink()}, p)
	if err != nil {
		t.Fatal(err)
	}
	if modSmall.LogSuccess >= monoSmall {
		t.Errorf("QAOA-48x4: modular (%g) should lose to monolithic (%g)",
			modSmall.LogSuccess, monoSmall)
	}

	// Large and deep: the 96-ion chain's heating dominates and the
	// modular machine wins decisively.
	bigBm := workloads.QAOAN(96, 10, 9)
	bigNat := decompose.ToNative(bigBm.Circuit)
	monoBig := monolithicLog(t, bigNat, 96, 8, p)
	modBig, err := Run(context.Background(), bigNat, Spec{Modules: 2, IonsPerModule: 49, HeadSize: 8, Link: DefaultLink()}, p)
	if err != nil {
		t.Fatal(err)
	}
	if modBig.LogSuccess <= monoBig {
		t.Errorf("QAOA-96x10: modular (%g) should beat monolithic (%g)",
			modBig.LogSuccess, monoBig)
	}
}

func monolithicLog(t *testing.T, c *circuit.Circuit, ions, head int, p noise.Params) float64 {
	t.Helper()
	r, err := Monolithic(context.Background(), c, ions, head, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
