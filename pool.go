package tilt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// PoolBackend fans work out across a fleet of member backends behind the
// single Backend contract: Compile picks a member (least-loaded by default,
// round-robin on request), Simulate routes the artifact back to the member
// that compiled it, and a per-member circuit breaker takes failing
// endpoints out of rotation for a cooldown. Members are typically Remote
// backends pointing at N linqd daemons, but any Backend mix works — the
// runner and the jobs manager scale across the fleet with zero call-site
// changes.
//
// A PoolBackend is safe for concurrent use.
type PoolBackend struct {
	name     string
	members  []*poolMember
	rr       bool // round-robin instead of least-loaded
	next     atomic.Uint64
	failMax  int           // consecutive endpoint failures that open the breaker
	cooldown time.Duration // how long an open breaker keeps a member out
	mx       *poolInstruments
}

// poolMember is one endpoint plus its load and breaker state.
type poolMember struct {
	b        Backend
	inflight atomic.Int64 // Compile/Simulate calls currently executing here

	mu        sync.Mutex
	fails     int       // consecutive endpoint failures
	openUntil time.Time // breaker open until (zero = closed)
}

// PoolOption configures a PoolBackend.
type PoolOption func(*PoolBackend)

// PoolRoundRobin picks members in strict rotation instead of the default
// least-loaded choice — useful when members are identical and call costs
// are uniform.
func PoolRoundRobin() PoolOption {
	return func(p *PoolBackend) { p.rr = true }
}

// PoolLeastLoaded picks the member with the fewest in-flight calls (the
// default; ties break by member order).
func PoolLeastLoaded() PoolOption {
	return func(p *PoolBackend) { p.rr = false }
}

// PoolWithBreaker tunes the per-member circuit breaker: failMax
// consecutive endpoint failures open it and the member sits out for
// cooldown before the next attempt half-opens it (defaults 3 and 15s). A
// daemon that reports it is draining (RemoteError.ShuttingDown) opens the
// breaker immediately without counting as a failure.
func PoolWithBreaker(failMax int, cooldown time.Duration) PoolOption {
	return func(p *PoolBackend) { p.failMax, p.cooldown = failMax, cooldown }
}

// PoolWithName overrides the pool's Backend name (default "pool(n)").
func PoolWithName(name string) PoolOption {
	return func(p *PoolBackend) { p.name = name }
}

// PoolWithMetrics instruments the pool against the registry: pick counters,
// endpoint-failure and breaker-trip counters, and open-breaker/in-flight
// gauges, all labeled by member backend name.
func PoolWithMetrics(r *MetricsRegistry) PoolOption {
	return func(p *PoolBackend) { p.mx = newPoolInstruments(r) }
}

// poolInstruments holds the pool's pre-resolved metric handles.
type poolInstruments struct {
	picks    *metrics.CounterVec // linq_pool_picks_total{endpoint}
	failures *metrics.CounterVec // linq_pool_endpoint_failures_total{endpoint}
	trips    *metrics.CounterVec // linq_pool_breaker_trips_total{endpoint}
	open     *metrics.GaugeVec   // linq_pool_breaker_open{endpoint}
	inflight *metrics.GaugeVec   // linq_pool_inflight{endpoint}
}

func newPoolInstruments(r *metrics.Registry) *poolInstruments {
	return &poolInstruments{
		picks: r.CounterVec("linq_pool_picks_total",
			"Pool routing decisions, by member endpoint.", "endpoint"),
		failures: r.CounterVec("linq_pool_endpoint_failures_total",
			"Endpoint-attributable member failures (transport, 5xx).", "endpoint"),
		trips: r.CounterVec("linq_pool_breaker_trips_total",
			"Breaker openings, by member endpoint.", "endpoint"),
		open: r.GaugeVec("linq_pool_breaker_open",
			"1 while the member's breaker is open.", "endpoint"),
		inflight: r.GaugeVec("linq_pool_inflight",
			"Calls currently executing on the member.", "endpoint"),
	}
}

// ErrEmptyPool is returned by Pool when no members are given.
var ErrEmptyPool = errors.New("tilt: Pool needs at least one backend")

// Pool returns a fan-out backend over the members. Members must be safe
// for concurrent use (all backends in this package are).
func Pool(members []Backend, opts ...PoolOption) (*PoolBackend, error) {
	if len(members) == 0 {
		return nil, ErrEmptyPool
	}
	p := &PoolBackend{
		name:     fmt.Sprintf("pool(%d)", len(members)),
		failMax:  3,
		cooldown: 15 * time.Second,
	}
	for i, b := range members {
		if b == nil {
			return nil, fmt.Errorf("tilt: Pool member %d is nil", i)
		}
		p.members = append(p.members, &poolMember{b: b})
	}
	for _, o := range opts {
		o(p)
	}
	if p.failMax < 1 {
		p.failMax = 1
	}
	return p, nil
}

// Name implements Backend.
func (p *PoolBackend) Name() string { return p.name }

// Members returns the member backends, in pool order.
func (p *PoolBackend) Members() []Backend {
	out := make([]Backend, len(p.members))
	for i, m := range p.members {
		out[i] = m.b
	}
	return out
}

// Healthy returns how many members currently have a closed (or half-open)
// breaker.
func (p *PoolBackend) Healthy() int {
	now := time.Now()
	n := 0
	for _, m := range p.members {
		m.mu.Lock()
		if m.openUntil.IsZero() || !now.Before(m.openUntil) {
			n++
		}
		m.mu.Unlock()
	}
	return n
}

// PoolMemberHealth is one member's live sample from PoolBackend.Health:
// local breaker/load state always, plus the daemon's own load report for
// members that expose one (RemoteBackend).
type PoolMemberHealth struct {
	// Name is the member backend's name; Healthy reports a closed (or
	// half-open) breaker; InFlight counts this pool's calls currently
	// executing on the member.
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	InFlight int64  `json:"inflight"`
	// Remote is the daemon's live health/load sample, nil for members that
	// don't expose one. Error is the sample-fetch failure, if any ("" on
	// success) — a failed sample does not trip the breaker.
	Remote *RemoteHealth `json:"remote,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// healthReporter is implemented by members that can sample their endpoint's
// live load (RemoteBackend.Health).
type healthReporter interface {
	Health(ctx context.Context) (RemoteHealth, error)
}

// Health samples every member: breaker state and in-flight load locally,
// and — for members backed by a daemon — the endpoint's own queue-depth /
// cache / drain report, fetched sequentially with the caller's context
// bounding the whole sweep. This is the fleet supervisor's routing input;
// sampling never mutates breaker state.
func (p *PoolBackend) Health(ctx context.Context) []PoolMemberHealth {
	now := time.Now()
	out := make([]PoolMemberHealth, 0, len(p.members))
	for _, m := range p.members {
		m.mu.Lock()
		healthy := m.openUntil.IsZero() || !now.Before(m.openUntil)
		m.mu.Unlock()
		h := PoolMemberHealth{
			Name:     m.b.Name(),
			Healthy:  healthy,
			InFlight: m.inflight.Load(),
		}
		if hr, ok := m.b.(healthReporter); ok {
			if rh, err := hr.Health(ctx); err != nil {
				h.Error = err.Error()
			} else {
				h.Remote = &rh
			}
		}
		out = append(out, h)
	}
	return out
}

// Compile implements Backend: pick a member and compile there. The
// returned artifact is a pool-owned wrapper that remembers its member, so
// Simulate lands on the same endpoint. The member's own artifact is never
// mutated — it may be a shared compile-cache entry handed to concurrent
// callers.
func (p *PoolBackend) Compile(ctx context.Context, c *Circuit) (*Artifact, error) {
	m := p.pick()
	if p.mx != nil {
		p.mx.picks.With(m.b.Name()).Inc()
	}
	a, err := poolCall(p, m, func() (*Artifact, error) { return m.b.Compile(ctx, c) })
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Backend: a.Backend,
		Circuit: a.Circuit,
		Native:  a.Native,
		Compile: a.Compile,
		Mapped:  a.Mapped,
		via:     m,
		inner:   a,
	}, nil
}

// Simulate implements Backend: route the artifact to the member that
// compiled it.
func (p *PoolBackend) Simulate(ctx context.Context, a *Artifact) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("tilt: %s.Simulate: nil artifact", p.name)
	}
	m := a.via
	if m == nil || a.inner == nil || !p.owns(m) {
		return nil, fmt.Errorf("tilt: %s.Simulate: artifact was not compiled by this pool", p.name)
	}
	return poolCall(p, m, func() (*Result, error) { return m.b.Simulate(ctx, a.inner) })
}

// owns reports whether m is one of p's members.
func (p *PoolBackend) owns(m *poolMember) bool {
	for _, cand := range p.members {
		if cand == m {
			return true
		}
	}
	return false
}

// pick chooses the member to route the next call to: among the members
// whose breaker is closed (or whose cooldown elapsed — the half-open
// probe), round-robin or least-loaded. With every breaker open, the least
// recently opened member is tried anyway so the pool degrades to retrying
// rather than failing fast forever.
func (p *PoolBackend) pick() *poolMember {
	now := time.Now()
	avail := make([]*poolMember, 0, len(p.members))
	for _, m := range p.members {
		m.mu.Lock()
		ok := m.openUntil.IsZero() || !now.Before(m.openUntil)
		m.mu.Unlock()
		if ok {
			avail = append(avail, m)
		}
	}
	if len(avail) == 0 {
		// Total outage: probe the member whose breaker opened first.
		oldest := p.members[0]
		for _, m := range p.members[1:] {
			m.mu.Lock()
			mu := m.openUntil
			m.mu.Unlock()
			oldest.mu.Lock()
			ou := oldest.openUntil
			oldest.mu.Unlock()
			if mu.Before(ou) {
				oldest = m
			}
		}
		return oldest
	}
	if p.rr {
		return avail[int((p.next.Add(1)-1)%uint64(len(avail)))]
	}
	best := avail[0]
	for _, m := range avail[1:] {
		if m.inflight.Load() < best.inflight.Load() {
			best = m
		}
	}
	return best
}

// poolCall runs fn against the member with load accounting and breaker
// bookkeeping. (A package function because Go methods cannot carry type
// parameters.)
func poolCall[T any](p *PoolBackend, m *poolMember, fn func() (T, error)) (T, error) {
	m.inflight.Add(1)
	if p.mx != nil {
		p.mx.inflight.With(m.b.Name()).Inc()
	}
	// Deferred so a panicking member (recovered upstream by the runner)
	// cannot leave phantom in-flight load that skews least-loaded picks.
	defer func() {
		m.inflight.Add(-1)
		if p.mx != nil {
			p.mx.inflight.With(m.b.Name()).Dec()
		}
	}()
	out, err := fn()
	p.observe(m, err)
	return out, err
}

// observe updates the member's breaker from one call outcome.
func (p *PoolBackend) observe(m *poolMember, err error) {
	if err == nil {
		m.mu.Lock()
		wasOpen := !m.openUntil.IsZero()
		m.fails = 0
		m.openUntil = time.Time{}
		m.mu.Unlock()
		if wasOpen && p.mx != nil {
			p.mx.open.With(m.b.Name()).Set(0)
		}
		return
	}
	drain, fault := classifyPoolError(err)
	if !drain && !fault {
		return // circuit-level or caller-cancelled: not the endpoint's fault
	}
	if p.mx != nil && fault {
		p.mx.failures.With(m.b.Name()).Inc()
	}
	m.mu.Lock()
	trip := drain // a draining daemon leaves rotation immediately
	if fault {
		m.fails++
		// openUntil is only non-zero between a trip and the next success,
		// so a fault there is a failed half-open probe: re-open on that
		// single probe instead of demanding failMax fresh failures.
		trip = trip || m.fails >= p.failMax || !m.openUntil.IsZero()
	}
	if trip {
		m.fails = 0
		m.openUntil = time.Now().Add(p.cooldown)
	}
	m.mu.Unlock()
	if trip && p.mx != nil {
		p.mx.trips.With(m.b.Name()).Inc()
		p.mx.open.With(m.b.Name()).Set(1)
	}
}

// classifyPoolError splits an error into the breaker-relevant categories:
// drain (the endpoint said it is shutting down — deliberate) and fault
// (transport failures and 5xx — the endpoint is unhealthy). Everything
// else — caller cancellation, 4xx circuit/validation errors — leaves the
// breaker alone.
func classifyPoolError(err error) (drain, fault bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		if re.ShuttingDown() {
			return true, false
		}
		return false, re.Temporary()
	}
	return false, false
}

// String renders the pool and its member names.
func (p *PoolBackend) String() string {
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.b.Name()
	}
	return p.name + "[" + strings.Join(names, ", ") + "]"
}
