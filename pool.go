package tilt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// PoolBackend fans work out across a fleet of member backends behind the
// single Backend contract: Compile picks a member (least-loaded by default,
// round-robin or queue-depth-weighted on request), Simulate routes the
// artifact back to the member that compiled it, and a per-member circuit
// breaker takes failing endpoints out of rotation for a cooldown. Members
// are typically Remote backends pointing at N linqd daemons, but any
// Backend mix works — the runner and the jobs manager scale across the
// fleet with zero call-site changes.
//
// With PoolWeightedByLoad or PoolWithAdmissionControl the pool runs a
// background health sampler over the members that expose a live load
// report (RemoteBackend.Health) and routes on what the daemons actually
// say — queue depth and drain state — instead of only the client-side
// in-flight counters. Call Close to stop the sampler when the pool is
// retired.
//
// A PoolBackend is safe for concurrent use.
type PoolBackend struct {
	name     string
	members  []*poolMember
	policy   poolPolicy
	next     atomic.Uint64
	failMax  int           // consecutive endpoint failures that open the breaker
	cooldown time.Duration // how long an open breaker keeps a member out

	hedging    bool          // PoolWithHedging enabled
	hedgeDelay time.Duration // 0 = derive from the primary's poll ceiling
	watermark  int           // admission-control queue-depth watermark (0 = off)

	sampleEvery   time.Duration // health sampler period
	healthTimeout time.Duration // per-member bound on one health fetch

	stop      chan struct{} // closes to stop the sampler (nil = no sampler)
	closeOnce sync.Once

	mx *poolInstruments
}

// poolPolicy selects how Compile picks among the healthy members.
type poolPolicy int

const (
	pickLeastLoaded poolPolicy = iota // fewest in-flight calls (default)
	pickRoundRobin                    // strict rotation
	pickWeighted                      // sampled queue depth + in-flight
)

// poolMember is one endpoint plus its load, sample, and breaker state.
type poolMember struct {
	b        Backend
	inflight atomic.Int64 // Compile/Simulate calls currently executing here

	mu        sync.Mutex
	fails     int       // consecutive endpoint failures
	openUntil time.Time // breaker open until (zero = closed)
	sample    loadSample
}

// loadSample is the member's last daemon-reported load, stored by the
// background sampler and read by the weighted pick and admission control.
type loadSample struct {
	when     time.Time // zero = never sampled
	queued   int       // jobs waiting daemon-side (the routing signal)
	running  int       // jobs on daemon workers
	draining bool      // daemon stopped intake
}

// PoolOption configures a PoolBackend.
type PoolOption func(*PoolBackend)

// PoolRoundRobin picks members in strict rotation instead of the default
// least-loaded choice — useful when members are identical and call costs
// are uniform.
func PoolRoundRobin() PoolOption {
	return func(p *PoolBackend) { p.policy = pickRoundRobin }
}

// PoolLeastLoaded picks the member with the fewest in-flight calls (the
// default; ties break by member order).
func PoolLeastLoaded() PoolOption {
	return func(p *PoolBackend) { p.policy = pickLeastLoaded }
}

// PoolWeightedByLoad routes on live daemon telemetry: a background sampler
// polls each member's health report (RemoteBackend.Health) and Compile
// picks the member with the lowest daemon-side queue depth plus in-flight
// load, skipping draining members while any alternative exists. Members
// that expose no health report (or whose last sample went stale) fall back
// to their client-side in-flight count, so mixed fleets still route
// sensibly. Tune the sampler with PoolWithSampleInterval; stop it with
// Close.
func PoolWeightedByLoad() PoolOption {
	return func(p *PoolBackend) { p.policy = pickWeighted }
}

// PoolWithHedging enables tail-latency hedging on Compile and Simulate:
// when the attempt on the picked member has not returned after delay, the
// pool launches a second attempt on the next-best member, the first
// successful result wins, and the loser's context is cancelled (a
// cancelled loser never counts against its member's breaker). A primary
// that fails outright fires the hedge immediately. Zero delay derives the
// hedge trigger from the primary member's poll-backoff ceiling
// (RemoteMaxPollInterval) when it exposes one — the longest a healthy
// remote attempt sits between result polls — and 50ms otherwise.
func PoolWithHedging(delay time.Duration) PoolOption {
	return func(p *PoolBackend) { p.hedging, p.hedgeDelay = true, delay }
}

// PoolWithAdmissionControl refuses new Compiles with ErrFleetSaturated
// while every member's last health sample reports a daemon-side queue
// depth over the watermark (a draining member counts as over). The check
// only engages once every member has a fresh sample — partial knowledge
// admits, so a fleet of members without health reports is never throttled
// client-side. Requires the background sampler (started automatically).
func PoolWithAdmissionControl(watermark int) PoolOption {
	return func(p *PoolBackend) { p.watermark = watermark }
}

// PoolWithSampleInterval tunes the background health sampler period
// (default 500ms). Samples older than four periods are treated as stale by
// the weighted pick and admission control.
func PoolWithSampleInterval(d time.Duration) PoolOption {
	return func(p *PoolBackend) { p.sampleEvery = d }
}

// PoolWithHealthTimeout bounds each member's health fetch within a Health
// sweep or sampler tick (default 2s), so one hung daemon cannot stall the
// whole fleet sample.
func PoolWithHealthTimeout(d time.Duration) PoolOption {
	return func(p *PoolBackend) { p.healthTimeout = d }
}

// PoolWithBreaker tunes the per-member circuit breaker: failMax
// consecutive endpoint failures open it and the member sits out for
// cooldown before the next attempt half-opens it (defaults 3 and 15s). A
// daemon that reports it is draining (RemoteError.ShuttingDown) opens the
// breaker immediately without counting as a failure.
func PoolWithBreaker(failMax int, cooldown time.Duration) PoolOption {
	return func(p *PoolBackend) { p.failMax, p.cooldown = failMax, cooldown }
}

// PoolWithName overrides the pool's Backend name (default "pool(n)").
func PoolWithName(name string) PoolOption {
	return func(p *PoolBackend) { p.name = name }
}

// PoolWithMetrics instruments the pool against the registry: pick counters,
// endpoint-failure and breaker-trip counters, open-breaker/in-flight
// gauges, and the linq_fleet_* live-routing families (sampled queue depth,
// hedges fired and won, admission refusals), all labeled by member backend
// name.
func PoolWithMetrics(r *MetricsRegistry) PoolOption {
	return func(p *PoolBackend) { p.mx = newPoolInstruments(r) }
}

// poolInstruments holds the pool's pre-resolved metric handles.
type poolInstruments struct {
	picks     *metrics.CounterVec // linq_pool_picks_total{endpoint}
	failures  *metrics.CounterVec // linq_pool_endpoint_failures_total{endpoint}
	trips     *metrics.CounterVec // linq_pool_breaker_trips_total{endpoint}
	open      *metrics.GaugeVec   // linq_pool_breaker_open{endpoint}
	inflight  *metrics.GaugeVec   // linq_pool_inflight{endpoint}
	depth     *metrics.GaugeVec   // linq_fleet_queue_depth{endpoint}
	sampleErr *metrics.CounterVec // linq_fleet_sample_errors_total{endpoint}
	hedges    *metrics.CounterVec // linq_fleet_hedges_total{endpoint}
	hedgeWins *metrics.CounterVec // linq_fleet_hedge_wins_total{endpoint}
	saturated *metrics.Counter    // linq_fleet_saturated_total
}

func newPoolInstruments(r *metrics.Registry) *poolInstruments {
	return &poolInstruments{
		picks: r.CounterVec("linq_pool_picks_total",
			"Pool routing decisions, by member endpoint.", "endpoint"),
		failures: r.CounterVec("linq_pool_endpoint_failures_total",
			"Endpoint-attributable member failures (transport, 5xx).", "endpoint"),
		trips: r.CounterVec("linq_pool_breaker_trips_total",
			"Breaker openings, by member endpoint.", "endpoint"),
		open: r.GaugeVec("linq_pool_breaker_open",
			"1 while the member's breaker is open.", "endpoint"),
		inflight: r.GaugeVec("linq_pool_inflight",
			"Calls currently executing on the member.", "endpoint"),
		depth: r.GaugeVec("linq_fleet_queue_depth",
			"Last daemon-reported queue depth per member endpoint.", "endpoint"),
		sampleErr: r.CounterVec("linq_fleet_sample_errors_total",
			"Failed health samples, by member endpoint.", "endpoint"),
		hedges: r.CounterVec("linq_fleet_hedges_total",
			"Hedged second attempts launched, by hedge endpoint.", "endpoint"),
		hedgeWins: r.CounterVec("linq_fleet_hedge_wins_total",
			"Hedged attempts whose result won, by hedge endpoint.", "endpoint"),
		saturated: r.Counter("linq_fleet_saturated_total",
			"Compiles refused by fleet-wide admission control."),
	}
}

// ErrEmptyPool is returned by Pool when no members are given.
var ErrEmptyPool = errors.New("tilt: Pool needs at least one backend")

// ErrFleetSaturated is returned by Compile under PoolWithAdmissionControl
// while every member reports a queue depth over the watermark (or is
// draining). Callers should back off and retry; the fleet supervisor
// treats it as the signal to scale up.
var ErrFleetSaturated = errors.New("tilt: fleet saturated: every member over the queue-depth watermark")

// Pool returns a fan-out backend over the members. Members must be safe
// for concurrent use (all backends in this package are). Pools configured
// with PoolWeightedByLoad or PoolWithAdmissionControl start a background
// health sampler; call Close to stop it when retiring the pool.
func Pool(members []Backend, opts ...PoolOption) (*PoolBackend, error) {
	if len(members) == 0 {
		return nil, ErrEmptyPool
	}
	p := &PoolBackend{
		name:          fmt.Sprintf("pool(%d)", len(members)),
		failMax:       3,
		cooldown:      15 * time.Second,
		sampleEvery:   500 * time.Millisecond,
		healthTimeout: 2 * time.Second,
	}
	for i, b := range members {
		if b == nil {
			return nil, fmt.Errorf("tilt: Pool member %d is nil", i)
		}
		p.members = append(p.members, &poolMember{b: b})
	}
	for _, o := range opts {
		o(p)
	}
	if p.failMax < 1 {
		p.failMax = 1
	}
	if p.sampleEvery <= 0 {
		p.sampleEvery = 500 * time.Millisecond
	}
	if p.healthTimeout <= 0 {
		p.healthTimeout = 2 * time.Second
	}
	if (p.policy == pickWeighted || p.watermark > 0) && p.anyReporter() {
		p.stop = make(chan struct{})
		go p.sampleLoop()
	}
	return p, nil
}

// anyReporter reports whether at least one member exposes a live health
// report — without one the sampler would have nothing to sample.
func (p *PoolBackend) anyReporter() bool {
	for _, m := range p.members {
		if _, ok := m.b.(healthReporter); ok {
			return true
		}
	}
	return false
}

// Close stops the background health sampler, if one is running. The pool
// stays usable for routing afterwards (weighted picks degrade to the
// client-side in-flight counters as samples go stale). Close is idempotent
// and safe to call concurrently.
func (p *PoolBackend) Close() error {
	if p.stop != nil {
		p.closeOnce.Do(func() { close(p.stop) })
	}
	return nil
}

// Name implements Backend.
func (p *PoolBackend) Name() string { return p.name }

// Members returns the member backends, in pool order.
func (p *PoolBackend) Members() []Backend {
	out := make([]Backend, len(p.members))
	for i, m := range p.members {
		out[i] = m.b
	}
	return out
}

// Healthy returns how many members currently have a closed (or half-open)
// breaker.
func (p *PoolBackend) Healthy() int {
	now := time.Now()
	n := 0
	for _, m := range p.members {
		m.mu.Lock()
		if m.openUntil.IsZero() || !now.Before(m.openUntil) {
			n++
		}
		m.mu.Unlock()
	}
	return n
}

// PoolMemberHealth is one member's live sample from PoolBackend.Health:
// local breaker/load state always, plus the daemon's own load report for
// members that expose one (RemoteBackend).
type PoolMemberHealth struct {
	// Name is the member backend's name; Healthy reports a closed (or
	// half-open) breaker; InFlight counts this pool's calls currently
	// executing on the member.
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	InFlight int64  `json:"inflight"`
	// Remote is the daemon's live health/load sample, nil for members that
	// don't expose one. Error is the sample-fetch failure, if any ("" on
	// success) — a failed sample does not trip the breaker.
	Remote *RemoteHealth `json:"remote,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// healthReporter is implemented by members that can sample their endpoint's
// live load (RemoteBackend.Health).
type healthReporter interface {
	Health(ctx context.Context) (RemoteHealth, error)
}

// poolTargeter is implemented by members that route to one daemon-side
// pool (RemoteBackend.Target), so load samples can be reduced to the pool
// the member actually submits to.
type poolTargeter interface {
	Target() string
}

// Health samples every member concurrently: breaker state and in-flight
// load locally, and — for members backed by a daemon — the endpoint's own
// queue-depth / cache / drain report. Each fetch is bounded by the
// per-member health timeout (PoolWithHealthTimeout) under the caller's
// context, so one hung daemon delays the sweep by at most that timeout
// instead of serializing the whole fleet behind it. This is the fleet
// supervisor's routing input; sampling never mutates breaker state.
func (p *PoolBackend) Health(ctx context.Context) []PoolMemberHealth {
	now := time.Now()
	out := make([]PoolMemberHealth, len(p.members))
	var wg sync.WaitGroup
	for i, m := range p.members {
		m.mu.Lock()
		healthy := m.openUntil.IsZero() || !now.Before(m.openUntil)
		m.mu.Unlock()
		out[i] = PoolMemberHealth{
			Name:     m.b.Name(),
			Healthy:  healthy,
			InFlight: m.inflight.Load(),
		}
		hr, ok := m.b.(healthReporter)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, hr healthReporter) {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, p.healthTimeout)
			defer cancel()
			if rh, err := hr.Health(hctx); err != nil {
				out[i].Error = err.Error()
			} else {
				out[i].Remote = &rh
			}
		}(i, hr)
	}
	wg.Wait()
	return out
}

// sampleLoop is the background health sampler: one tick per sample period
// until Close. Each tick refreshes every reporting member's load sample;
// the weighted pick and admission control read the latest one.
func (p *PoolBackend) sampleLoop() {
	t := time.NewTicker(p.sampleEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sampleOnce()
		}
	}
}

// sampleOnce fetches every reporting member's health concurrently, each
// bounded by the per-member timeout, and stores the reduced load sample.
// A failed fetch keeps the previous sample (it goes stale on its own and
// the member degrades to in-flight routing) — sampling never trips
// breakers.
func (p *PoolBackend) sampleOnce() {
	var wg sync.WaitGroup
	for _, m := range p.members {
		hr, ok := m.b.(healthReporter)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(m *poolMember, hr healthReporter) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.healthTimeout)
			defer cancel()
			rh, err := hr.Health(ctx)
			if err != nil {
				if p.mx != nil {
					p.mx.sampleErr.With(m.b.Name()).Inc()
				}
				return
			}
			target := ""
			if tg, ok := m.b.(poolTargeter); ok {
				target = tg.Target()
			}
			s := reduceHealth(rh, target)
			s.when = time.Now()
			m.mu.Lock()
			m.sample = s
			m.mu.Unlock()
			if p.mx != nil {
				p.mx.depth.With(m.b.Name()).Set(float64(s.queued))
			}
		}(m, hr)
	}
	wg.Wait()
}

// reduceHealth folds a daemon health report into one routing sample: the
// load of the pool the member targets when the report carries it, the sum
// over all pools otherwise (any draining pool marks the member draining —
// linqd drains whole-daemon).
func reduceHealth(h RemoteHealth, target string) loadSample {
	var s, all loadSample
	matched := false
	for _, l := range h.Load {
		all.queued += l.Queued
		all.running += l.Running
		all.draining = all.draining || l.Draining
		if target != "" && l.Backend == target {
			matched = true
			s.queued += l.Queued
			s.running += l.Running
			s.draining = s.draining || l.Draining
		}
	}
	if !matched {
		return all
	}
	// Drain state is daemon-wide even when depth is per-pool.
	s.draining = s.draining || all.draining
	return s
}

// sampleSnapshot returns the member's last load sample and whether it is
// still fresh (within four sample periods).
func (p *PoolBackend) sampleSnapshot(m *poolMember, now time.Time) (loadSample, bool) {
	m.mu.Lock()
	s := m.sample
	m.mu.Unlock()
	fresh := !s.when.IsZero() && now.Sub(s.when) <= 4*p.sampleEvery
	return s, fresh
}

// admit enforces fleet-wide admission control: refuse the Compile when
// every member's fresh sample is over the watermark (or draining). Members
// without a fresh sample count as available capacity — partial knowledge
// never refuses work.
func (p *PoolBackend) admit() error {
	if p.watermark <= 0 {
		return nil
	}
	now := time.Now()
	for _, m := range p.members {
		s, fresh := p.sampleSnapshot(m, now)
		if !fresh || (!s.draining && s.queued <= p.watermark) {
			return nil
		}
	}
	if p.mx != nil {
		p.mx.saturated.Inc()
	}
	return ErrFleetSaturated
}

// Compile implements Backend: pick a member and compile there, hedging the
// attempt onto the next-best member under PoolWithHedging. The returned
// artifact is a pool-owned wrapper that remembers its member, so Simulate
// lands on the same endpoint. The member's own artifact is never mutated —
// it may be a shared compile-cache entry handed to concurrent callers.
// Under PoolWithAdmissionControl a saturated fleet refuses the work with
// ErrFleetSaturated before any member is attempted.
func (p *PoolBackend) Compile(ctx context.Context, c *Circuit) (*Artifact, error) {
	if err := p.admit(); err != nil {
		return nil, err
	}
	primary := p.pick(nil)
	if p.mx != nil {
		p.mx.picks.With(primary.b.Name()).Inc()
	}
	var (
		a   *Artifact
		m   *poolMember
		err error
	)
	if backup := p.hedgePartner(primary); backup != nil {
		a, m, err = hedgedCall(ctx, p, primary, backup,
			func(ctx context.Context, m *poolMember) (*Artifact, error) {
				return m.b.Compile(ctx, c)
			})
	} else {
		m = primary
		a, err = poolCall(p, primary, func() (*Artifact, error) { return primary.b.Compile(ctx, c) })
	}
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Backend: a.Backend,
		Circuit: a.Circuit,
		Native:  a.Native,
		Compile: a.Compile,
		Mapped:  a.Mapped,
		via:     m,
		inner:   a,
	}, nil
}

// Simulate implements Backend: route the artifact to the member that
// compiled it. Under PoolWithHedging a slow member is raced by the
// next-best one — the hedge compiles the artifact's circuit on its own
// member first (a no-op for remote members, whose compile is daemon-side
// anyway), so artifact affinity never leaks one member's artifact into
// another.
func (p *PoolBackend) Simulate(ctx context.Context, a *Artifact) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("tilt: %s.Simulate: nil artifact", p.name)
	}
	primary := a.via
	if primary == nil || a.inner == nil || !p.owns(primary) {
		return nil, fmt.Errorf("tilt: %s.Simulate: artifact was not compiled by this pool", p.name)
	}
	if backup := p.hedgePartner(primary); backup != nil {
		res, _, err := hedgedCall(ctx, p, primary, backup,
			func(ctx context.Context, m *poolMember) (*Result, error) {
				if m == primary {
					return m.b.Simulate(ctx, a.inner)
				}
				art, err := m.b.Compile(ctx, a.Circuit)
				if err != nil {
					return nil, err
				}
				return m.b.Simulate(ctx, art)
			})
		return res, err
	}
	return poolCall(p, primary, func() (*Result, error) { return primary.b.Simulate(ctx, a.inner) })
}

// owns reports whether m is one of p's members.
func (p *PoolBackend) owns(m *poolMember) bool {
	for _, cand := range p.members {
		if cand == m {
			return true
		}
	}
	return false
}

// pick chooses the member to route the next call to, never returning
// exclude (pass nil to consider everyone): among the members whose breaker
// is closed (or whose cooldown elapsed — the half-open probe), round-robin,
// least-loaded, or weighted by the sampled daemon queue depth. With every
// breaker open, the least recently opened member is tried anyway so the
// pool degrades to retrying rather than failing fast forever.
func (p *PoolBackend) pick(exclude *poolMember) *poolMember {
	now := time.Now()
	avail := make([]*poolMember, 0, len(p.members))
	for _, m := range p.members {
		if m == exclude {
			continue
		}
		m.mu.Lock()
		ok := m.openUntil.IsZero() || !now.Before(m.openUntil)
		m.mu.Unlock()
		if ok {
			avail = append(avail, m)
		}
	}
	if len(avail) == 0 {
		// Total outage: probe the member whose breaker opened first.
		var oldest *poolMember
		for _, m := range p.members {
			if m == exclude {
				continue
			}
			if oldest == nil {
				oldest = m
				continue
			}
			m.mu.Lock()
			mu := m.openUntil
			m.mu.Unlock()
			oldest.mu.Lock()
			ou := oldest.openUntil
			oldest.mu.Unlock()
			if mu.Before(ou) {
				oldest = m
			}
		}
		return oldest
	}
	switch p.policy {
	case pickRoundRobin:
		return avail[int((p.next.Add(1)-1)%uint64(len(avail)))]
	case pickWeighted:
		return p.pickWeighted(avail, now)
	}
	best := avail[0]
	for _, m := range avail[1:] {
		if m.inflight.Load() < best.inflight.Load() {
			best = m
		}
	}
	return best
}

// pickWeighted scores every available member on what its daemon last
// reported — queue depth plus daemon-side running work — on top of the
// client-side in-flight count, and picks the lowest. Draining members are
// skipped while any non-draining candidate exists; members without a fresh
// sample score on in-flight alone (the least-loaded degradation).
func (p *PoolBackend) pickWeighted(avail []*poolMember, now time.Time) *poolMember {
	var best *poolMember
	var bestScore int64
	bestDraining := true
	for _, m := range avail {
		s, fresh := p.sampleSnapshot(m, now)
		score := m.inflight.Load()
		draining := false
		if fresh {
			score += int64(s.queued) + int64(s.running)
			draining = s.draining
		}
		better := best == nil ||
			(bestDraining && !draining) ||
			(bestDraining == draining && score < bestScore)
		if better {
			best, bestScore, bestDraining = m, score, draining
		}
	}
	return best
}

// hedgePartner returns the member to hedge onto — the best pick excluding
// the primary — or nil when hedging is off or no alternative member has a
// workable breaker.
func (p *PoolBackend) hedgePartner(primary *poolMember) *poolMember {
	if !p.hedging || len(p.members) < 2 {
		return nil
	}
	now := time.Now()
	for _, m := range p.members {
		if m == primary {
			continue
		}
		m.mu.Lock()
		ok := m.openUntil.IsZero() || !now.Before(m.openUntil)
		m.mu.Unlock()
		if ok {
			return p.pick(primary)
		}
	}
	return nil
}

// pollBounded is implemented by members that expose their poll-backoff
// ceiling (RemoteBackend.MaxPollInterval) — the auto hedge delay.
type pollBounded interface {
	MaxPollInterval() time.Duration
}

// hedgeAfter resolves the effective hedge trigger for a primary member.
func (p *PoolBackend) hedgeAfter(primary *poolMember) time.Duration {
	if p.hedgeDelay > 0 {
		return p.hedgeDelay
	}
	if pb, ok := primary.b.(pollBounded); ok {
		if d := pb.MaxPollInterval(); d > 0 {
			return d
		}
	}
	return 50 * time.Millisecond
}

// hedgeOutcome is one attempt's result inside a hedged call.
type hedgeOutcome[T any] struct {
	m   *poolMember
	out T
	err error
}

// hedgedCall races the call on primary against a delayed second attempt on
// backup: the first success wins and the loser's context is cancelled. The
// hedge fires when the primary is slower than the hedge delay, or
// immediately when the primary fails outright. Each attempt runs through
// poolCall, so load accounting and breaker bookkeeping stay per-member —
// a draining primary opens only its own breaker, and a cancelled loser
// (context.Canceled) never counts as a fault. When both attempts fail the
// primary's error is returned. (A package function because Go methods
// cannot carry type parameters.)
func hedgedCall[T any](ctx context.Context, p *PoolBackend, primary, backup *poolMember,
	call func(context.Context, *poolMember) (T, error)) (T, *poolMember, error) {
	pctx, cancelPrimary := context.WithCancel(ctx)
	defer cancelPrimary()
	bctx, cancelBackup := context.WithCancel(ctx)
	defer cancelBackup()

	// Buffered for both attempts: a loser finishing after the winner
	// returns must never block forever on the send.
	results := make(chan hedgeOutcome[T], 2)
	attempt := func(ctx context.Context, m *poolMember) {
		out, err := poolCall(p, m, func() (T, error) { return call(ctx, m) })
		results <- hedgeOutcome[T]{m: m, out: out, err: err}
	}
	go attempt(pctx, primary)

	hedged := false
	launchHedge := func() {
		hedged = true
		if p.mx != nil {
			p.mx.hedges.With(backup.b.Name()).Inc()
		}
		go attempt(bctx, backup)
	}

	timer := time.NewTimer(p.hedgeAfter(primary))
	defer timer.Stop()

	var zero T
	var primaryErr error
	received := 0
	for {
		select {
		case <-ctx.Done():
			// The caller gave up: both attempts see the cancellation through
			// their derived contexts and unwind on their own.
			return zero, nil, ctx.Err()
		case <-timer.C:
			if !hedged {
				launchHedge()
			}
		case r := <-results:
			received++
			if r.err == nil {
				// First success wins; cancel the other attempt promptly.
				cancelPrimary()
				cancelBackup()
				if hedged && r.m == backup && p.mx != nil {
					p.mx.hedgeWins.With(backup.b.Name()).Inc()
				}
				return r.out, r.m, nil
			}
			if r.m == primary {
				primaryErr = r.err
			}
			if !hedged {
				// The primary failed before the hedge fired: try the backup
				// immediately rather than waiting out the delay.
				launchHedge()
				continue
			}
			if received == 2 {
				if primaryErr != nil {
					return zero, nil, primaryErr
				}
				return zero, nil, r.err
			}
		}
	}
}

// poolCall runs fn against the member with load accounting and breaker
// bookkeeping. (A package function because Go methods cannot carry type
// parameters.)
func poolCall[T any](p *PoolBackend, m *poolMember, fn func() (T, error)) (T, error) {
	m.inflight.Add(1)
	if p.mx != nil {
		p.mx.inflight.With(m.b.Name()).Inc()
	}
	// Deferred so a panicking member (recovered upstream by the runner)
	// cannot leave phantom in-flight load that skews least-loaded picks.
	defer func() {
		m.inflight.Add(-1)
		if p.mx != nil {
			p.mx.inflight.With(m.b.Name()).Dec()
		}
	}()
	out, err := fn()
	p.observe(m, err)
	return out, err
}

// observe updates the member's breaker from one call outcome.
func (p *PoolBackend) observe(m *poolMember, err error) {
	if err == nil {
		m.mu.Lock()
		wasOpen := !m.openUntil.IsZero()
		m.fails = 0
		m.openUntil = time.Time{}
		m.mu.Unlock()
		if wasOpen && p.mx != nil {
			p.mx.open.With(m.b.Name()).Set(0)
		}
		return
	}
	drain, fault := classifyPoolError(err)
	if !drain && !fault {
		return // circuit-level or caller-cancelled: not the endpoint's fault
	}
	if p.mx != nil && fault {
		p.mx.failures.With(m.b.Name()).Inc()
	}
	m.mu.Lock()
	trip := drain // a draining daemon leaves rotation immediately
	if fault {
		m.fails++
		// openUntil is only non-zero between a trip and the next success,
		// so a fault there is a failed half-open probe: re-open on that
		// single probe instead of demanding failMax fresh failures.
		trip = trip || m.fails >= p.failMax || !m.openUntil.IsZero()
	}
	if trip {
		m.fails = 0
		m.openUntil = time.Now().Add(p.cooldown)
	}
	m.mu.Unlock()
	if trip && p.mx != nil {
		p.mx.trips.With(m.b.Name()).Inc()
		p.mx.open.With(m.b.Name()).Set(1)
	}
}

// classifyPoolError splits an error into the breaker-relevant categories:
// drain (the endpoint said it is shutting down — deliberate) and fault
// (transport failures and 5xx — the endpoint is unhealthy). Everything
// else — caller cancellation, 4xx circuit/validation errors — leaves the
// breaker alone.
func classifyPoolError(err error) (drain, fault bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		if re.ShuttingDown() {
			return true, false
		}
		return false, re.Temporary()
	}
	return false, false
}

// String renders the pool and its member names.
func (p *PoolBackend) String() string {
	names := make([]string, len(p.members))
	for i, m := range p.members {
		names[i] = m.b.Name()
	}
	return p.name + "[" + strings.Join(names, ", ") + "]"
}
