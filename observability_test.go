package tilt_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tilt "repro"
	"repro/internal/jobs"
	"repro/internal/linqhttp"
	"repro/internal/tracing"
)

// startTracedDaemon boots an in-process linqd API with tracing wired end to
// end (manager spans + HTTP traceparent extraction) and returns the base
// URL, the manager, and the daemon-side tracer for store assertions.
func startTracedDaemon(t *testing.T, tiltOpts ...tilt.Option) (string, *jobs.Manager, *tilt.Tracer) {
	t.Helper()
	reg := tilt.NewMetricsRegistry()
	tracer := tracing.New("linqd", tracing.WithMetrics(reg))
	mgr, err := jobs.New([]jobs.Pool{
		{Name: "TILT", Backend: tilt.NewTILT(tiltOpts...), Workers: 2},
	}, jobs.WithMetrics(reg), jobs.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(linqhttp.NewServer(mgr, reg, linqhttp.WithTracer(tracer)).Routes())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return srv.URL, mgr, tracer
}

// sseEvent mirrors the jobs.Event wire form for SSE frame decoding.
type sseEvent struct {
	Seq     uint64 `json:"seq"`
	JobID   string `json:"job"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped"`
	TraceID string `json:"trace_id"`
}

// subscribeSSE opens /v1/events and feeds decoded job frames to a channel
// until the stream or the test ends. It returns after the first frame of
// the stream preamble has been read, so a subsequent submission cannot race
// the subscription.
func subscribeSSE(t *testing.T, base string) <-chan sseEvent {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("GET /v1/events: Content-Type %q, want text/event-stream", ct)
	}
	t.Cleanup(cancel)

	events := make(chan sseEvent, 64)
	sc := bufio.NewScanner(resp.Body)
	// The handler flushes a ": stream open" comment before any job frame;
	// reading it here proves the subscription is registered daemon-side.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("expected stream-open comment, got %q (err %v)", sc.Text(), sc.Err())
	}
	go func() {
		defer resp.Body.Close()
		defer close(events)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev sseEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				continue
			}
			events <- ev
		}
	}()
	return events
}

// nextEventFor pulls frames until one matches the job ID, with a deadline.
func nextEventFor(t *testing.T, events <-chan sseEvent, jobID string) sseEvent {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("event stream closed before the expected frame")
			}
			if ev.JobID == jobID {
				return ev
			}
		case <-deadline:
			t.Fatalf("no SSE frame for job %s within deadline", jobID)
		}
	}
}

// TestEndToEndTraceStitching is the acceptance check for the tracing plane:
// a tilt.Remote submission against a live daemon must yield ONE trace —
// the client's trace ID — containing the client-side span and every
// daemon-side span (HTTP ingress, job, queue-wait, compile with all five
// passes, simulate), while an SSE subscriber observes the job's
// queued → running → done transitions in order.
func TestEndToEndTraceStitching(t *testing.T) {
	base, _, daemonTracer := startTracedDaemon(t,
		tilt.WithDevice(0, 4), tilt.WithOptimize())
	events := subscribeSSE(t, base)

	clientTracer := tilt.NewTracer("client")
	root := clientTracer.StartRoot("e2e")
	ctx := tilt.ContextWithSpan(context.Background(), root)

	res, err := tilt.Execute(ctx, tilt.Remote(base), tilt.GHZ(6).Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Backend != "TILT" {
		t.Fatalf("unexpected result: %+v", res)
	}
	root.End()
	traceID := root.Context().TraceID

	// Client side of the stitch: the remote-call span lives in the client
	// tracer under the same trace ID.
	clientSpans, ok := clientTracer.Trace(traceID)
	if !ok {
		t.Fatalf("client tracer lost trace %s", traceID)
	}
	if !hasSpan(clientSpans, "remote TILT") {
		t.Fatalf("client trace missing %q span; have %v", "remote TILT", spanNames(clientSpans))
	}

	// SSE side: the three lifecycle transitions arrive in order and carry
	// the stitched trace ID. The submission was the daemon's only job, so
	// the first frame names it.
	first := nextEventAny(t, events)
	jobID := first.JobID
	for i, want := range []string{"queued", "running", "done"} {
		ev := first
		if i > 0 {
			ev = nextEventFor(t, events, jobID)
		}
		if ev.State != want {
			t.Fatalf("SSE transition = %q, want %q (job %s)", ev.State, want, jobID)
		}
		if ev.TraceID != traceID {
			t.Fatalf("SSE frame trace_id = %q, want client trace %q", ev.TraceID, traceID)
		}
	}

	// Daemon side of the stitch, through the public API: every span under
	// the client's trace ID.
	var tr struct {
		Job     string             `json:"job"`
		TraceID string             `json:"trace_id"`
		Spans   []tracing.SpanData `json:"spans"`
	}
	getJSON(t, base+"/v1/traces/"+jobID, &tr)
	if tr.TraceID != traceID {
		t.Fatalf("/v1/traces trace_id = %q, want %q", tr.TraceID, traceID)
	}
	for _, want := range []string{
		"http submit", "job", "queue-wait", "compile",
		"pass decompose", "pass optimize", "pass place",
		"pass insert-swaps", "pass schedule", "simulate",
	} {
		if !hasSpan(tr.Spans, want) {
			t.Fatalf("stitched trace missing %q span; have %v", want, spanNames(tr.Spans))
		}
	}
	for _, s := range tr.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span %q has trace %s, want %s", s.Name, s.TraceID, traceID)
		}
		if s.Service != "linqd" {
			t.Fatalf("span %q service = %q, want linqd", s.Name, s.Service)
		}
	}

	// And directly against the store, for belt and braces.
	if _, ok := daemonTracer.Trace(traceID); !ok {
		t.Fatalf("daemon tracer has no trace %s", traceID)
	}
}

// TestDedupByteIdenticalWithTracing guards the dedup contract against the
// tracing plane: two identical submissions share one execution, get
// distinct trace IDs on their job envelopes, and still serve byte-identical
// result payloads — trace state must never leak into the shared Result.
func TestDedupByteIdenticalWithTracing(t *testing.T) {
	// A gate on Compile holds the first execution in flight, so the second
	// submission is guaranteed to land inside the dedup window.
	gate := &gatedTILT{TILTBackend: tilt.NewTILT(tilt.WithDevice(0, 4)), release: make(chan struct{})}
	reg := tilt.NewMetricsRegistry()
	tracer := tilt.NewTracer("linqd")
	mgr, err := jobs.New([]jobs.Pool{{Name: "TILT", Backend: gate, Workers: 1}},
		jobs.WithMetrics(reg), jobs.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(linqhttp.NewServer(mgr, reg, linqhttp.WithTracer(tracer)).Routes())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	base := srv.URL

	circ := tilt.GHZ(8).Circuit
	id1 := submitJob(t, base, circ)
	id2 := submitJob(t, base, circ)
	close(gate.release)

	j1 := awaitTerminal(t, mgr, id1)
	j2 := awaitTerminal(t, mgr, id2)
	if !j2.Deduped {
		t.Fatal("second identical submission did not dedup")
	}
	if j1.TraceID == "" || j2.TraceID == "" {
		t.Fatal("jobs missing trace IDs with tracing enabled")
	}
	if j1.TraceID == j2.TraceID {
		t.Fatal("deduped jobs must carry their own trace IDs, got a shared one")
	}

	// The envelope legitimately differs (ID, timestamps, per-job trace ID);
	// the shared result payload must not.
	b1, r1 := resultPayload(t, base, id1)
	_, r2 := resultPayload(t, base, id2)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("deduped result payloads differ byte for byte:\n%s\nvs\n%s", r1, r2)
	}
	if bytes.Contains(r1, []byte(j1.TraceID)) || bytes.Contains(r1, []byte(j2.TraceID)) {
		t.Fatal("trace ID leaked into the shared result payload")
	}
	// Each envelope carries its own trace ID, never the sibling's.
	if !bytes.Contains(b1, []byte(j1.TraceID)) || bytes.Contains(b1, []byte(j2.TraceID)) {
		t.Fatal("job envelope trace_id mixed up between deduped jobs")
	}
}

// gatedTILT is a real TILT backend whose Compile blocks until release is
// closed — it pins executions in flight so dedup windows are deterministic.
type gatedTILT struct {
	*tilt.TILTBackend
	release chan struct{}
}

func (g *gatedTILT) Compile(ctx context.Context, c *tilt.Circuit) (*tilt.Artifact, error) {
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.TILTBackend.Compile(ctx, c)
}

// submitJob POSTs a circuit and returns the accepted job ID.
func submitJob(t *testing.T, base string, c *tilt.Circuit) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"circuit": c, "backend": "TILT"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID       string `json:"id"`
		TraceURL string `json:"trace_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/traces/" + out.ID; out.TraceURL != want {
		t.Fatalf("submit trace_url = %q, want %q", out.TraceURL, want)
	}
	return out.ID
}

// awaitTerminal polls the manager until the job reaches a terminal state.
func awaitTerminal(t *testing.T, mgr *jobs.Manager, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, err := mgr.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal", id)
	return jobs.Job{}
}

// resultPayload fetches a terminal job's envelope and returns it raw
// alongside the raw bytes of its "result" field.
func resultPayload(t *testing.T, base, id string) (envelope, result []byte) {
	t.Helper()
	envelope = getRaw(t, base+"/v1/jobs/"+id+"/result")
	var out struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(envelope, &out); err != nil {
		t.Fatalf("decode result envelope: %v", err)
	}
	if len(out.Result) == 0 {
		t.Fatalf("job %s served no result payload: %s", id, envelope)
	}
	return envelope, out.Result
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	if err := json.Unmarshal(getRaw(t, url), into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func hasSpan(spans []tracing.SpanData, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

func spanNames(spans []tracing.SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// nextEventAny blocks for the next frame of any job.
func nextEventAny(t *testing.T, events <-chan sseEvent) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("event stream closed before any frame")
		}
		return ev
	case <-time.After(30 * time.Second):
		t.Fatal("no SSE frame within deadline")
	}
	return sseEvent{}
}
