// Benchmarks regenerating the paper's evaluation artifacts — one per table
// and figure. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark both exercises the full pipeline at paper scale and, on the
// first iteration, reports the headline reproduction numbers through b.Log
// (visible with -v). The printed rows are the same ones cmd/experiments
// emits; EXPERIMENTS.md records a reference snapshot.
package tilt_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	tilt "repro"
	"repro/internal/experiments"
	"repro/runner"
)

// BenchmarkTable2Workloads regenerates Table II: the six benchmark circuits
// and their two-qubit gate counts.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 6 {
			b.Fatalf("Table II rows = %d", len(rows))
		}
	}
}

// BenchmarkFig6SwapInsertion regenerates Fig. 6: baseline vs LinQ swap
// insertion on the long-distance benchmarks at head size 16.
func BenchmarkFig6SwapInsertion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFig6(rows))
		}
	}
}

// BenchmarkFig7MaxSwapLen regenerates Fig. 7: the MaxSwapLen sweep from 15
// down to 8 on BV, QFT, and SQRT.
func BenchmarkFig7MaxSwapLen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(context.Background(), 16, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFig7(rows))
		}
	}
}

// BenchmarkFig8Architectures regenerates Fig. 8: TILT-16/TILT-32/Ideal/QCCD
// success rates over all six benchmarks (including the QCCD capacity sweep).
func BenchmarkFig8Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFig8(rows))
		}
	}
}

// BenchmarkTable3Compilation regenerates Table III: compile times, move
// counts, travel distances, and execution-time estimates at heads 16 and 32.
func BenchmarkTable3Compilation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable3(rows))
		}
	}
}

// BenchmarkExtensionCooling regenerates the §VII sympathetic-cooling
// ablation (success recovery vs cooling interval on QFT-64).
func BenchmarkExtensionCooling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CoolingAblation(context.Background(), 16, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatCooling(rows))
		}
	}
}

// BenchmarkExtensionScaling regenerates the §VII single-chain scaling study.
func BenchmarkExtensionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingStudy(context.Background(), 16, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatScaling(rows))
		}
	}
}

// BenchmarkExtensionModular regenerates the §VII MUSIQC modular study.
func BenchmarkExtensionModular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ModularStudy(context.Background(), 8, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatModular(rows))
		}
	}
}

// BenchmarkAblationHeadSize sweeps head sizes beyond the paper's {16, 32}.
func BenchmarkAblationHeadSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HeadSizeStudy(context.Background(), "QFT", nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatHeadStudy("QFT", rows))
		}
	}
}

// BenchmarkAblationPlacement compares initial-placement strategies.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PlacementAblation(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatPlacement(rows))
		}
	}
}

// BenchmarkAblationAlpha sweeps the Eq. 1 lookahead discount.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AlphaAblation(context.Background(), 16, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAlpha(rows))
		}
	}
}

// BenchmarkAblationOptimizer measures the peephole optimizer's effect.
func BenchmarkAblationOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OptimizeAblation(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatOptimize(rows))
		}
	}
}

// BenchmarkAblationScheduler compares Algorithm 2 against a sweeping head.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SchedulerAblation(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatScheduler(rows))
		}
	}
}

// BenchmarkSuiteShortDistance runs the §III-C application-class suite
// (VQE, Ising, surface-code patches) across architectures.
func BenchmarkSuiteShortDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ShortDistanceSuite(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatSuite(rows))
		}
	}
}

// BenchmarkAdvantageSummary reproduces the abstract's headline numbers
// ("up to 4.35x and 1.95x on average") from the Fig. 8 data.
func BenchmarkAdvantageSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		a := experiments.AdvantageSummary(rows, 32)
		if i == 0 {
			b.Log("\n" + experiments.FormatAdvantage(a, 32))
		}
	}
}

// BenchmarkRobustness re-checks the §VI-B orderings at ±2x noise constants.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Robustness(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatRobustness(rows))
		}
	}
}

// BenchmarkPhysicsAddressing computes the §I execution-zone uniformity study
// on the 64-ion equilibrium chain.
func BenchmarkPhysicsAddressing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AddressingStudy(64, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAddressing(64, 16, rows))
		}
	}
}

// BenchmarkPhysicsGateMode reruns the benchmarks with FM-style chain-bound
// gate times (the §III-B gate-selection argument).
func BenchmarkPhysicsGateMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GateModeAblation(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatGateMode(rows))
		}
	}
}

// runnerBatch builds the Fig. 8-shaped batch the runner benchmarks execute:
// every Table II benchmark on TILT-16 and TILT-32 (12 independent
// compile+simulate jobs).
func runnerBatch() []runner.Job {
	var jobs []runner.Job
	for _, bm := range tilt.Benchmarks() {
		for _, head := range []int{16, 32} {
			jobs = append(jobs, runner.Job{
				Name:    fmt.Sprintf("%s/head-%d", bm.Name, head),
				Backend: tilt.NewTILT(tilt.WithDevice(bm.Qubits(), head)),
				Circuit: bm.Circuit,
			})
		}
	}
	return jobs
}

// compileSweep drives one backend through `sweep` compiles of the same
// Table II benchmark — the shape of a parameter study that revisits one
// circuit×config per point.
func compileSweep(b *testing.B, be tilt.Backend, c *tilt.Circuit, sweep int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for j := 0; j < sweep; j++ {
			if _, err := be.Compile(ctx, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileCold sweeps the BV benchmark 100× on a cache-less TILT
// backend: every iteration pays the full decompose→place→insert→schedule
// pipeline. Baseline for BenchmarkCompileCached.
func BenchmarkCompileCold(b *testing.B) {
	bm := tilt.BenchmarkBV()
	be := tilt.NewTILT(tilt.WithDevice(0, 16))
	b.ResetTimer()
	compileSweep(b, be, bm.Circuit, 100)
}

// BenchmarkCompileCached is BenchmarkCompileCold behind WithCompileCache:
// the first compile of the sweep misses, the other 99 are content-addressed
// cache hits returning the identical artifact.
func BenchmarkCompileCached(b *testing.B) {
	bm := tilt.BenchmarkBV()
	be := tilt.NewTILT(tilt.WithDevice(0, 16), tilt.WithCompileCache(4))
	b.ResetTimer()
	compileSweep(b, be, bm.Circuit, 100)
}

// BenchmarkRunnerSerial is the baseline for BenchmarkRunnerParallel: the
// same batch forced through one worker — equivalent to looping over the
// legacy serial Run.
func BenchmarkRunnerSerial(b *testing.B) {
	ctx := context.Background()
	jobs := runnerBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, jr := range runner.Run(ctx, jobs, runner.WithWorkers(1)) {
			if jr.Err != nil {
				b.Fatal(jr.Err)
			}
		}
	}
}

// BenchmarkRunnerParallel demonstrates batch throughput scaling vs the
// serial baseline across worker counts up to GOMAXPROCS. Compare with
// BenchmarkRunnerSerial:
//
//	go test -bench 'BenchmarkRunner' -benchmem
func BenchmarkRunnerParallel(b *testing.B) {
	ctx := context.Background()
	jobs := runnerBatch()
	for w := 2; ; w *= 2 {
		if w > runtime.GOMAXPROCS(0) {
			w = runtime.GOMAXPROCS(0)
		}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, jr := range runner.Run(ctx, jobs, runner.WithWorkers(w)) {
					if jr.Err != nil {
						b.Fatal(jr.Err)
					}
				}
			}
		})
		if w == runtime.GOMAXPROCS(0) {
			break
		}
	}
}
